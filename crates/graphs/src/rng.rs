//! Pinned, portable randomness for everything whose output is part of the
//! repo's byte-determinism contract.
//!
//! Two primitives live here:
//!
//! - [`split_seed`] — one keyed step of SplitMix64, the repo-wide seed
//!   deriver. Every simulation run takes a single 64-bit master seed;
//!   per-node and per-subsystem streams are derived with it so that (a)
//!   runs are exactly reproducible, (b) derived streams are statistically
//!   independent, and (c) processing order cannot influence any stream.
//! - [`PortableRng`] — a self-contained xoshiro256** generator seeded via
//!   SplitMix64, used wherever a random *stream* (not just one value)
//!   feeds a committed output: baseline node orders, solver priorities,
//!   generator families that promise cross-platform stability.
//!
//! Why not `SmallRng`? `rand`'s `SmallRng` is explicitly documented as
//! unstable: its algorithm may change between `rand` releases and differs
//! across platforms. That is fine for the simulator's internal node
//! streams (pinned by `Cargo.lock` and x86-64 CI), but a committed
//! experiment table or a pinned regression mask must not silently change
//! when the toolchain does. Both algorithms below are frozen by this
//! module's test vectors: any behavioural drift fails the build.

/// One step of the SplitMix64 generator: mixes `master + (index+1)·GOLDEN`
/// into a well-distributed 64-bit value.
///
/// Equivalent to the `index+1`-th output of a standard SplitMix64 sequence
/// started at `master`, which is why it doubles as the seeding function of
/// [`PortableRng`].
///
/// # Examples
///
/// ```
/// use mis_graphs::rng::split_seed;
///
/// let a = split_seed(42, 0);
/// let b = split_seed(42, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, split_seed(42, 0));
/// ```
pub fn split_seed(master: u64, index: u64) -> u64 {
    let mut z = master.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A portable xoshiro256** generator with a frozen output stream.
///
/// The state is seeded with four [`split_seed`] steps (the SplitMix64
/// seeding the xoshiro authors recommend), so the full stream is a pure
/// function of the 64-bit seed — on every platform, under every rustc and
/// `rand` version. The test suite pins reference outputs, including the
/// published xoshiro256** vector for the all-SplitMix64-from-zero state.
///
/// # Examples
///
/// ```
/// use mis_graphs::rng::PortableRng;
///
/// let mut a = PortableRng::new(7);
/// let mut b = PortableRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// let mut order: Vec<usize> = (0..10).collect();
/// PortableRng::new(7).shuffle(&mut order);
/// let mut again: Vec<usize> = (0..10).collect();
/// PortableRng::new(7).shuffle(&mut again);
/// assert_eq!(order, again);
/// ```
#[derive(Debug, Clone)]
pub struct PortableRng {
    s: [u64; 4],
}

impl PortableRng {
    /// Seeds the generator from a 64-bit seed via four SplitMix64 steps.
    pub fn new(seed: u64) -> PortableRng {
        let mut s = [
            split_seed(seed, 0),
            split_seed(seed, 1),
            split_seed(seed, 2),
            split_seed(seed, 3),
        ];
        // xoshiro's one forbidden state. Unreachable from SplitMix64
        // seeding in any practical sense, but the guard keeps the type's
        // contract unconditional.
        if s == [0; 4] {
            s[0] = 1;
        }
        PortableRng { s }
    }

    /// The next 64-bit output of the xoshiro256** stream.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A near-uniform index in `0..bound` via Lemire's widening-multiply
    /// reduction: `(next_u64() · bound) >> 64`.
    ///
    /// The reduction is rejection-free, so it consumes exactly one draw per
    /// call (stream position is predictable) at the cost of a bias of at
    /// most `bound / 2⁶⁴` per index — irrelevant for the shuffles and
    /// samples this crate needs, and dwarfed by their sampling noise.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "gen_index bound must be positive");
        ((u128::from(self.next_u64()) * bound as u128) >> 64) as usize
    }

    /// Fisher–Yates shuffle driven by [`PortableRng::gen_index`], consuming
    /// exactly `xs.len().saturating_sub(1)` draws.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_index(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn split_seed_deterministic() {
        assert_eq!(split_seed(1, 2), split_seed(1, 2));
    }

    #[test]
    fn split_seed_pinned_outputs() {
        // Frozen reference values: these must never change, or every
        // derived stream in the repo silently shifts.
        assert_eq!(split_seed(42, 0), 0xbdd7_3226_2feb_6e95);
        assert_eq!(split_seed(42, 1), 0x28ef_e333_b266_f103);
    }

    #[test]
    fn split_seed_distinct_across_indices() {
        let seeds: HashSet<u64> = (0..10_000).map(|i| split_seed(7, i)).collect();
        assert_eq!(seeds.len(), 10_000);
    }

    #[test]
    fn split_seed_distinct_across_masters() {
        assert_ne!(split_seed(1, 0), split_seed(2, 0));
        // Adjacent masters should still decorrelate.
        let a: Vec<u64> = (0..8).map(|i| split_seed(100, i)).collect();
        let b: Vec<u64> = (0..8).map(|i| split_seed(101, i)).collect();
        assert!(a.iter().zip(&b).all(|(x, y)| x != y));
    }

    #[test]
    fn split_seed_bits_look_balanced() {
        // Crude sanity check: across many outputs, each bit position should
        // be set roughly half the time.
        let n = 4096u64;
        for bit in [0u32, 13, 31, 47, 63] {
            let ones = (0..n)
                .filter(|&i| split_seed(99, i) >> bit & 1 == 1)
                .count() as f64;
            let frac = ones / n as f64;
            assert!((0.4..0.6).contains(&frac), "bit {bit} frac {frac}");
        }
    }

    #[test]
    fn xoshiro_pinned_reference_stream() {
        // Seed 0: SplitMix64 seeding from state 0, i.e. the canonical
        // xoshiro256** reference configuration. First output is the
        // published vector 0x99EC5F36CB75F2B4.
        let mut r = PortableRng::new(0);
        assert_eq!(r.next_u64(), 0x99ec_5f36_cb75_f2b4);
        assert_eq!(r.next_u64(), 0xbf6e_1f78_4956_452a);
        assert_eq!(r.next_u64(), 0x1a5f_849d_4933_e6e0);
        assert_eq!(r.next_u64(), 0x6aa5_94f1_262d_2d2c);
        // A non-trivial seed, same contract.
        let mut r = PortableRng::new(42);
        assert_eq!(r.next_u64(), 0x1578_0b2e_0c2e_c716);
        assert_eq!(r.next_u64(), 0x6104_d986_6d11_3a7e);
        assert_eq!(r.next_u64(), 0xae17_5332_39e4_99a1);
        assert_eq!(r.next_u64(), 0xecb8_ad47_03b3_60a1);
    }

    #[test]
    fn gen_index_pinned_and_in_range() {
        let mut r = PortableRng::new(42);
        let draws: Vec<usize> = (0..8).map(|_| r.gen_index(10)).collect();
        assert_eq!(draws, vec![0, 3, 6, 9, 9, 7, 7, 8]);
        let mut r = PortableRng::new(5);
        for bound in [1usize, 2, 3, 17, 1 << 40] {
            for _ in 0..50 {
                assert!(r.gen_index(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn gen_index_rejects_zero_bound() {
        PortableRng::new(0).gen_index(0);
    }

    #[test]
    fn shuffle_pinned_and_is_permutation() {
        let mut xs: Vec<usize> = (0..8).collect();
        PortableRng::new(42).shuffle(&mut xs);
        assert_eq!(xs, vec![7, 1, 6, 3, 5, 4, 2, 0]);
        let mut big: Vec<usize> = (0..300).collect();
        PortableRng::new(9).shuffle(&mut big);
        let mut sorted = big.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..300).collect::<Vec<_>>());
        assert_ne!(big, (0..300).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_handles_degenerate_lengths() {
        let mut empty: [usize; 0] = [];
        PortableRng::new(1).shuffle(&mut empty);
        let mut one = [7usize];
        PortableRng::new(1).shuffle(&mut one);
        assert_eq!(one, [7]);
    }

    #[test]
    fn streams_differ_across_seeds() {
        let a: Vec<u64> = {
            let mut r = PortableRng::new(1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = PortableRng::new(2);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }
}
