//! `mis-sim solve`: run a centralized (global-knowledge) MIS solver.
//!
//! Unlike `run`, nothing is simulated here — the solver sees the whole
//! topology. This is the "cost of distributedness" yardstick: set sizes
//! and bulk-synchronous round counts with zero radio constraints. Output
//! is deterministic in `(graph, --seed)` at every `--threads` count.

use crate::args::{SolveMode, SolveOpts};
use mis_graphs::{io, mis, parallel, Graph};

/// Executes `mis-sim solve`.
///
/// # Errors
///
/// Returns a message on IO/parse failures, and on a `--verify` failure
/// (a solver emitting an invalid set is a bug, not a result).
pub fn execute(opts: &SolveOpts) -> Result<String, String> {
    let g = load_graph(opts)?;
    let (mask, rounds, elim) = match opts.mode {
        SolveMode::Greedy => (mis::greedy_mis(&g), None, None),
        SolveMode::RandomGreedy => (mis::random_greedy_mis(&g, opts.seed), None, None),
        SolveMode::Push | SolveMode::Pull | SolveMode::Auto => {
            let elim = match opts.mode {
                SolveMode::Push => parallel::Elimination::Push,
                SolveMode::Pull => parallel::Elimination::Pull,
                _ => parallel::choose_elimination(&g),
            };
            let run = parallel::prio_mis_with(&g, opts.seed, opts.threads, elim);
            (run.mask, Some(run.rounds), Some(elim))
        }
    };
    let mut out = format!(
        "n = {} · m = {} · mode {}{} · |MIS| = {}",
        g.len(),
        g.edge_count(),
        opts.mode.label(),
        match elim {
            Some(e) if opts.mode == SolveMode::Auto => format!(" ({})", e.label()),
            _ => String::new(),
        },
        mis::set_size(&mask),
    );
    if let Some(r) = rounds {
        out.push_str(&format!(" · {r} rounds"));
    }
    out.push('\n');
    if opts.verify {
        parallel::verify_mis_par(&g, &mask, opts.threads)
            .map_err(|e| format!("solver output failed verification: {e}"))?;
        out.push_str("verified: maximal independent set\n");
    }
    if let Some(path) = &opts.out {
        let mut text = String::new();
        for (v, &inside) in mask.iter().enumerate() {
            if inside {
                text.push_str(&format!("{v}\n"));
            }
        }
        std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
        out.push_str(&format!("wrote set to {path}\n"));
    }
    Ok(out)
}

fn load_graph(opts: &SolveOpts) -> Result<Graph, String> {
    match &opts.graph_path {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            io::from_text(&text).map_err(|e| format!("cannot parse {path}: {e}"))
        }
        None => Ok(opts.family.generate(opts.n, opts.seed)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::VerifyOpts;
    use mis_graphs::generators::Family;

    fn base() -> SolveOpts {
        SolveOpts {
            family: Family::Star,
            n: 9,
            ..SolveOpts::default()
        }
    }

    #[test]
    fn solves_and_reports_rounds() {
        let opts = SolveOpts {
            verify: true,
            ..base()
        };
        let out = execute(&opts).unwrap();
        // A star's MIS is either the hub alone or all the leaves.
        assert!(out.contains("n = 9"), "{out}");
        assert!(out.contains("rounds"), "{out}");
        assert!(out.contains("mode auto ("), "{out}");
        assert!(out.contains("verified"), "{out}");
    }

    #[test]
    fn greedy_modes_skip_rounds() {
        for mode in [SolveMode::Greedy, SolveMode::RandomGreedy] {
            let out = execute(&SolveOpts { mode, ..base() }).unwrap();
            assert!(!out.contains("rounds"), "{out}");
            assert!(out.contains("|MIS| ="), "{out}");
        }
    }

    #[test]
    fn explicit_modes_match_each_other() {
        // Push and pull reach the same set; the report shows no "(elim)"
        // suffix because the side was requested, not chosen.
        let push = execute(&SolveOpts {
            mode: SolveMode::Push,
            family: Family::GnpAvgDegree(8),
            n: 128,
            ..base()
        })
        .unwrap();
        let pull = execute(&SolveOpts {
            mode: SolveMode::Pull,
            family: Family::GnpAvgDegree(8),
            n: 128,
            ..base()
        })
        .unwrap();
        assert!(push.contains("mode push ·"), "{push}");
        assert!(pull.contains("mode pull ·"), "{pull}");
        let size = |s: &str| {
            s.split("|MIS| = ")
                .nth(1)
                .unwrap()
                .split_whitespace()
                .next()
                .unwrap()
                .to_string()
        };
        assert_eq!(size(&push), size(&pull));
    }

    #[test]
    fn out_file_roundtrips_through_verify() {
        let dir = std::env::temp_dir().join("mis_cli_test_solve");
        std::fs::create_dir_all(&dir).unwrap();
        let graph_path = dir.join("g.txt");
        let set_path = dir.join("s.txt");
        let g = Family::GnpAvgDegree(8).generate(64, 3);
        std::fs::write(&graph_path, io::to_text(&g)).unwrap();
        let opts = SolveOpts {
            graph_path: Some(graph_path.to_string_lossy().into_owned()),
            seed: 3,
            threads: 2,
            out: Some(set_path.to_string_lossy().into_owned()),
            ..SolveOpts::default()
        };
        let out = execute(&opts).unwrap();
        assert!(out.contains("wrote set to"), "{out}");
        let verdict = crate::commands::verify::execute(&VerifyOpts {
            graph: graph_path.to_string_lossy().into_owned(),
            set: set_path.to_string_lossy().into_owned(),
        })
        .unwrap();
        assert!(verdict.starts_with("OK"), "{verdict}");
    }

    #[test]
    fn thread_counts_agree_byte_for_byte() {
        for mode in [SolveMode::Push, SolveMode::Pull, SolveMode::Auto] {
            let at = |threads: usize| {
                execute(&SolveOpts {
                    mode,
                    threads,
                    family: Family::GnpAvgDegree(8),
                    n: 200,
                    seed: 11,
                    ..SolveOpts::default()
                })
                .unwrap()
            };
            assert_eq!(at(1), at(2));
            assert_eq!(at(1), at(8));
        }
    }

    #[test]
    fn bad_paths_error() {
        let opts = SolveOpts {
            graph_path: Some("/no/such/topo.txt".into()),
            ..SolveOpts::default()
        };
        assert!(execute(&opts).unwrap_err().contains("cannot read"));
        let opts = SolveOpts {
            out: Some("/no/such/dir/s.txt".into()),
            ..base()
        };
        assert!(execute(&opts).unwrap_err().contains("cannot write"));
    }
}
