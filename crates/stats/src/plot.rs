//! Minimal hand-rolled SVG line charts for the experiment figures.
//!
//! No plotting dependency: the charts the evaluation needs are simple
//! multi-series line plots with optional log₂ axes. Output is standalone
//! SVG viewable in any browser.

use std::fmt::Write as _;

/// One plotted series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// (x, y) data points, in x order.
    pub points: Vec<(f64, f64)>,
}

/// A multi-series line chart.
#[derive(Debug, Clone, PartialEq)]
pub struct LineChart {
    /// Title rendered above the plot area.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series to draw.
    pub series: Vec<Series>,
    /// Use a log₂ scale on x.
    pub log_x: bool,
    /// Use a log₂ scale on y.
    pub log_y: bool,
}

/// Color-blind-safe series palette.
const PALETTE: [&str; 6] = [
    "#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9",
];

const W: f64 = 640.0;
const H: f64 = 420.0;
const ML: f64 = 70.0; // left margin
const MR: f64 = 20.0;
const MT: f64 = 42.0;
const MB: f64 = 56.0;

impl LineChart {
    /// Creates an empty chart with linear axes.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> LineChart {
        LineChart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            log_x: false,
            log_y: false,
        }
    }

    /// Adds a series.
    pub fn push_series(
        &mut self,
        name: impl Into<String>,
        points: impl IntoIterator<Item = (f64, f64)>,
    ) -> &mut LineChart {
        self.series.push(Series {
            name: name.into(),
            points: points.into_iter().collect(),
        });
        self
    }

    /// Switches the x axis to log₂ scale.
    pub fn with_log_x(mut self) -> LineChart {
        self.log_x = true;
        self
    }

    /// Switches the y axis to log₂ scale.
    pub fn with_log_y(mut self) -> LineChart {
        self.log_y = true;
        self
    }

    fn tx(&self, x: f64) -> f64 {
        if self.log_x {
            x.max(1e-12).log2()
        } else {
            x
        }
    }

    fn ty(&self, y: f64) -> f64 {
        if self.log_y {
            y.max(1e-12).log2()
        } else {
            y
        }
    }

    /// Renders the chart as a standalone SVG document.
    ///
    /// Charts with no finite data points render an "empty" placeholder
    /// rather than failing.
    pub fn to_svg(&self) -> String {
        let pts: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter())
            .map(|&(x, y)| (self.tx(x), self.ty(y)))
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        let mut svg = String::new();
        let _ = writeln!(
            svg,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{W}\" height=\"{H}\" \
             viewBox=\"0 0 {W} {H}\" font-family=\"sans-serif\">"
        );
        let _ = writeln!(svg, "<rect width=\"{W}\" height=\"{H}\" fill=\"white\"/>");
        let _ = writeln!(
            svg,
            "<text x=\"{}\" y=\"24\" text-anchor=\"middle\" font-size=\"15\" \
             font-weight=\"bold\">{}</text>",
            W / 2.0,
            escape(&self.title)
        );
        if pts.is_empty() {
            let _ = writeln!(
                svg,
                "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\" fill=\"#888\">no data</text>",
                W / 2.0,
                H / 2.0
            );
            svg.push_str("</svg>\n");
            return svg;
        }
        let (mut x0, mut x1) = min_max(pts.iter().map(|p| p.0));
        let (mut y0, mut y1) = min_max(pts.iter().map(|p| p.1));
        if (x1 - x0).abs() < 1e-12 {
            x0 -= 1.0;
            x1 += 1.0;
        }
        if (y1 - y0).abs() < 1e-12 {
            y0 -= 1.0;
            y1 += 1.0;
        }
        // A little headroom.
        let ypad = 0.06 * (y1 - y0);
        y0 -= ypad;
        y1 += ypad;
        let sx = |x: f64| ML + (x - x0) / (x1 - x0) * (W - ML - MR);
        let sy = |y: f64| H - MB - (y - y0) / (y1 - y0) * (H - MT - MB);

        // Axes.
        let _ = writeln!(
            svg,
            "<line x1=\"{ML}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"#333\"/>",
            H - MB,
            W - MR,
            H - MB
        );
        let _ = writeln!(
            svg,
            "<line x1=\"{ML}\" y1=\"{MT}\" x2=\"{ML}\" y2=\"{}\" stroke=\"#333\"/>",
            H - MB
        );
        // Ticks: 5 per axis.
        for i in 0..=4 {
            let fx = x0 + (x1 - x0) * i as f64 / 4.0;
            let px = sx(fx);
            let label = if self.log_x {
                format_tick(2f64.powf(fx))
            } else {
                format_tick(fx)
            };
            let _ = writeln!(
                svg,
                "<line x1=\"{px}\" y1=\"{}\" x2=\"{px}\" y2=\"{}\" stroke=\"#333\"/>\
                 <text x=\"{px}\" y=\"{}\" text-anchor=\"middle\" font-size=\"11\">{label}</text>",
                H - MB,
                H - MB + 5.0,
                H - MB + 18.0
            );
            let fy = y0 + (y1 - y0) * i as f64 / 4.0;
            let py = sy(fy);
            let label = if self.log_y {
                format_tick(2f64.powf(fy))
            } else {
                format_tick(fy)
            };
            let _ = writeln!(
                svg,
                "<line x1=\"{}\" y1=\"{py}\" x2=\"{ML}\" y2=\"{py}\" stroke=\"#333\"/>\
                 <text x=\"{}\" y=\"{}\" text-anchor=\"end\" font-size=\"11\">{label}</text>",
                ML - 5.0,
                ML - 8.0,
                py + 4.0
            );
            // Light gridline.
            let _ = writeln!(
                svg,
                "<line x1=\"{ML}\" y1=\"{py}\" x2=\"{}\" y2=\"{py}\" stroke=\"#eee\"/>",
                W - MR
            );
        }
        // Axis labels.
        let _ = writeln!(
            svg,
            "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\" font-size=\"12\">{}</text>",
            ML + (W - ML - MR) / 2.0,
            H - 12.0,
            escape(&self.x_label)
        );
        let _ = writeln!(
            svg,
            "<text x=\"16\" y=\"{}\" text-anchor=\"middle\" font-size=\"12\" \
             transform=\"rotate(-90 16 {})\">{}</text>",
            MT + (H - MT - MB) / 2.0,
            MT + (H - MT - MB) / 2.0,
            escape(&self.y_label)
        );
        // Series.
        for (i, s) in self.series.iter().enumerate() {
            let color = PALETTE[i % PALETTE.len()];
            let path: Vec<String> = s
                .points
                .iter()
                .map(|&(x, y)| (self.tx(x), self.ty(y)))
                .filter(|(x, y)| x.is_finite() && y.is_finite())
                .map(|(x, y)| format!("{:.1},{:.1}", sx(x), sy(y)))
                .collect();
            if path.len() > 1 {
                let _ = writeln!(
                    svg,
                    "<polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" \
                     stroke-width=\"2\"/>",
                    path.join(" ")
                );
            }
            for p in &path {
                let mut it = p.split(',');
                let (cx, cy) = (it.next().unwrap(), it.next().unwrap());
                let _ = writeln!(
                    svg,
                    "<circle cx=\"{cx}\" cy=\"{cy}\" r=\"3\" fill=\"{color}\"/>"
                );
            }
            // Legend entry.
            let ly = MT + 6.0 + 16.0 * i as f64;
            let _ = writeln!(
                svg,
                "<rect x=\"{}\" y=\"{}\" width=\"10\" height=\"10\" fill=\"{color}\"/>\
                 <text x=\"{}\" y=\"{}\" font-size=\"11\">{}</text>",
                ML + 8.0,
                ly,
                ML + 22.0,
                ly + 9.0,
                escape(&s.name)
            );
        }
        svg.push_str("</svg>\n");
        svg
    }
}

fn min_max(values: impl Iterator<Item = f64>) -> (f64, f64) {
    values.fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
        (lo.min(v), hi.max(v))
    })
}

fn format_tick(v: f64) -> String {
    let a = v.abs();
    if a >= 100_000.0 {
        format!("{:.0}k", v / 1000.0)
    } else if a >= 1000.0 {
        format!("{:.1}k", v / 1000.0)
    } else if a >= 10.0 || v == v.trunc() {
        format!("{v:.0}")
    } else if a >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> LineChart {
        let mut c = LineChart::new("Energy vs n", "n", "awake rounds");
        c.push_series("Algorithm 1", [(128.0, 19.0), (256.0, 22.0), (512.0, 25.0)]);
        c.push_series("naive Luby", [(128.0, 37.0), (256.0, 48.0), (512.0, 57.0)]);
        c
    }

    #[test]
    fn renders_wellformed_svg() {
        let svg = chart().to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 6);
        assert!(svg.contains("Energy vs n"));
        assert!(svg.contains("Algorithm 1"));
        assert!(svg.contains("naive Luby"));
    }

    #[test]
    fn log_axes_change_tick_labels() {
        let svg = chart().with_log_x().to_svg();
        // The middle x tick sits at the geometric mean 256.
        assert!(svg.contains(">256<"), "{svg}");
    }

    #[test]
    fn empty_chart_renders_placeholder() {
        let svg = LineChart::new("t", "x", "y").to_svg();
        assert!(svg.contains("no data"));
    }

    #[test]
    fn escapes_markup() {
        let mut c = LineChart::new("a < b & c", "x", "y");
        c.push_series("s<1>", [(0.0, 0.0), (1.0, 1.0)]);
        let svg = c.to_svg();
        assert!(svg.contains("a &lt; b &amp; c"));
        assert!(svg.contains("s&lt;1&gt;"));
        assert!(!svg.contains("a < b"));
    }

    #[test]
    fn constant_series_does_not_collapse() {
        let mut c = LineChart::new("flat", "x", "y");
        c.push_series("k", [(1.0, 5.0), (2.0, 5.0)]);
        let svg = c.to_svg();
        assert!(svg.contains("<polyline"));
    }
}
