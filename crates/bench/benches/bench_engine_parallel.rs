//! Serial vs parallel round engine on an act-dominated workload.
//!
//! Every node is awake every round and burns real CPU inside
//! `Protocol::act` (a tight RNG-mixing loop), so the sharded act and
//! delivery stages — not the serial merge — dominate wall-clock time.
//! This is the workload `SimConfig::with_threads` exists for; the
//! determinism contract (`docs/PARALLEL_ENGINE.md`) guarantees the
//! parallel runs produce byte-identical output, so the only question
//! left is the speedup, and `BENCH_engine.json` pins its floors.
//!
//! Entry points:
//! - `cargo bench --bench bench_engine_parallel` — criterion run at
//!   n = 10⁵ over thread counts {1, 2, max};
//! - `ENGINE_BENCH_SMOKE=1 cargo bench --bench bench_engine_parallel` —
//!   wall-clock serial/parallel ratios at n ∈ {10⁵, 10⁶}, enforced
//!   against the committed `parallel_speedup` baselines only on hosts
//!   with ≥ 4 cores (ratios are printed but not gated on smaller
//!   machines, where the floor is unreachable by construction);
//! - `ENGINE_BENCH_FULL=1` additionally measures the n = 10⁷ row — the
//!   scaling-story headline number — which needs several GiB of RAM and
//!   is kept out of the default smoke run.

use criterion::{criterion_group, BenchmarkId, Criterion};
use mis_graphs::{generators, Graph};
use radio_netsim::{
    Action, ChannelModel, Feedback, Message, NodeRng, NodeStatus, Protocol, SimConfig, Simulator,
};
use rand::Rng;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// RNG draws per `act` call: enough per-node work that phase sharding
/// pays for its merge, mirroring a real protocol's per-round sampling.
const DRAWS: u32 = 64;

/// Awake every round, mixing [`DRAWS`] RNG draws into an accumulator and
/// occasionally transmitting (so the delivery stages see traffic too);
/// halts after a fixed number of rounds.
struct CpuBound {
    rounds_left: u64,
    acc: u64,
    done: bool,
}

impl Protocol for CpuBound {
    fn act(&mut self, _round: u64, rng: &mut NodeRng) -> Action {
        if self.rounds_left == 0 {
            self.done = true;
            return Action::halt();
        }
        self.rounds_left -= 1;
        for _ in 0..DRAWS {
            self.acc = self.acc.wrapping_add(rng.gen::<u64>()).rotate_left(7);
        }
        if self.acc & 7 == 0 {
            Action::Transmit(Message::unary())
        } else {
            Action::Listen
        }
    }
    fn feedback(&mut self, _round: u64, _fb: Feedback, _rng: &mut NodeRng) {}
    fn status(&self) -> NodeStatus {
        NodeStatus::OutMis
    }
    fn finished(&self) -> bool {
        self.done
    }
}

/// Rounds per run, scaled down with n so every size costs roughly the
/// same total CPU.
fn rounds_for(n: usize) -> u64 {
    match n {
        0..=100_000 => 16,
        100_001..=1_000_000 => 4,
        _ => 2,
    }
}

fn run(g: &Graph, threads: usize) -> u64 {
    let rounds = rounds_for(g.len());
    let config = SimConfig::new(ChannelModel::Cd)
        .with_seed(1)
        .with_threads(threads);
    let report = Simulator::new(g, config).run(|_, _| CpuBound {
        rounds_left: rounds,
        acc: 0,
        done: false,
    });
    assert!(report.completed, "cpu-bound workload must finish");
    report.rounds
}

fn bench(c: &mut Criterion) {
    let max_threads = available_cores().min(8);
    let g = generators::path(100_000);
    let mut group = c.benchmark_group("engine_parallel/n=100000");
    group.sample_size(10);
    for threads in [1usize, 2, max_threads] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| b.iter(|| run(&g, threads)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);

fn available_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |c| c.get())
}

/// Best-of-`reps` wall-clock time for one run.
fn measure(g: &Graph, threads: usize, reps: u32) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        run(g, threads);
        best = best.min(start.elapsed());
    }
    best
}

/// Loads the committed parallel-speedup baselines
/// (`{"parallel_speedup": {"1e6": …}}`).
fn load_baseline() -> HashMap<String, f64> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let v: serde_json::Value = serde_json::from_str(&text).expect("baseline must parse");
    v["parallel_speedup"]
        .as_object()
        .expect("baseline needs a \"parallel_speedup\" table")
        .iter()
        .map(|(k, val)| (k.clone(), val.as_f64().expect("speedup must be numeric")))
        .collect()
}

/// Hard acceptance floors per size, independent of the committed
/// baseline: 10⁶ nodes must clear 2× (the PR's acceptance criterion);
/// 10⁵ tolerates more merge overhead relative to useful work.
fn absolute_floor(key: &str) -> f64 {
    if key == "1e5" {
        1.3
    } else {
        2.0
    }
}

/// The CI regression gate: serial/parallel wall ratios, enforced against
/// `max(absolute, 0.8 × baseline)` — but only on hosts with ≥ 4 cores.
fn smoke() {
    let cores = available_cores();
    let threads = cores.min(8);
    let enforce = cores >= 4;
    let baseline = load_baseline();
    let mut sizes = vec![(100_000usize, "1e5"), (1_000_000, "1e6")];
    if std::env::var_os("ENGINE_BENCH_FULL").is_some() {
        sizes.push((10_000_000, "1e7"));
    }
    let mut failed = false;
    for (n, key) in sizes {
        let g = generators::path(n);
        let reps = if n >= 10_000_000 { 1 } else { 3 };
        let serial = measure(&g, 1, reps);
        let parallel = measure(&g, threads, reps);
        let ratio = serial.as_secs_f64() / parallel.as_secs_f64().max(1e-9);
        let floor = baseline.get(key).map_or_else(
            || absolute_floor(key),
            |&b| (0.8 * b).max(absolute_floor(key)),
        );
        println!(
            "{key}: serial {serial:?} / {threads}-thread {parallel:?} = {ratio:.2}x \
             (floor {floor:.2}x, {})",
            if enforce {
                "enforced"
            } else {
                "print-only: < 4 cores"
            }
        );
        if enforce && ratio < floor {
            eprintln!("REGRESSION: {key} speedup {ratio:.2}x below floor {floor:.2}x");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("engine parallel smoke: done");
}

fn main() {
    if std::env::var_os("ENGINE_BENCH_SMOKE").is_some() {
        smoke();
        return;
    }
    benches();
    Criterion::default().configure_from_args().final_summary();
}
