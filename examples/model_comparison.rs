//! One network, every algorithm: the paper's complexity landscape in a
//! single table.
//!
//! Runs Algorithm 1 (CD + beeping), naive Luby, Algorithm 2 (no-CD), the
//! Davies-style LowDegreeMIS, the naive no-CD simulation, and the wired
//! SLEEPING-CONGEST references on the same graph.
//!
//! ```text
//! cargo run --release --example model_comparison
//! ```

use energy_mis::congest::{CongestSim, GhaffariCongest, LubyCongest};
use energy_mis::graphs::generators;
use energy_mis::mis::baselines::naive_luby_cd;
use energy_mis::mis::baselines::nocd_naive::{NaiveSimParams, NoCdNaive};
use energy_mis::mis::beeping_native::{BeepingParams, NativeBeepingMis};
use energy_mis::mis::cd::CdMis;
use energy_mis::mis::low_degree::LowDegreeMis;
use energy_mis::mis::nocd::NoCdMis;
use energy_mis::mis::params::{CdParams, LowDegreeParams, NoCdParams};
use energy_mis::netsim::{ChannelModel, RunReport, SimConfig, Simulator};

fn radio_row(name: &str, graph: &energy_mis::graphs::Graph, report: &RunReport) {
    println!(
        "{name:<42} | {:>7} | {:>10} | {:>8} | {}",
        report.max_energy(),
        format!("{:.1}", report.avg_energy()),
        report.rounds,
        if report.is_correct_mis(graph) {
            "✓"
        } else {
            "✗"
        }
    );
}

fn main() {
    let n = 512;
    let graph = generators::gnp(n, 8.0 / (n as f64 - 1.0), 11);
    let delta = graph.max_degree().max(2);
    println!("graph: n = {n}, m = {}, Δ = {delta}\n", graph.edge_count());
    println!(
        "{:<42} | {:>7} | {:>10} | {:>8} | MIS",
        "algorithm (model)", "E(max)", "E(avg)", "rounds"
    );
    println!("{}", "-".repeat(85));

    let cd_params = CdParams::for_n(n);
    let seed = 5;

    let r = Simulator::new(&graph, SimConfig::new(ChannelModel::Cd).with_seed(seed))
        .run(|_, _| CdMis::new(cd_params));
    radio_row("Algorithm 1 (CD)", &graph, &r);

    let r = Simulator::new(
        &graph,
        SimConfig::new(ChannelModel::Beeping).with_seed(seed),
    )
    .run(|_, _| CdMis::new(cd_params));
    radio_row("Algorithm 1 (beeping)", &graph, &r);

    let r = Simulator::new(&graph, SimConfig::new(ChannelModel::Cd).with_seed(seed))
        .run(|_, _| naive_luby_cd(cd_params));
    radio_row("naive Luby (CD)", &graph, &r);

    let beeping_params = BeepingParams::for_n(n);
    let r = Simulator::new(
        &graph,
        SimConfig::new(ChannelModel::BeepingSenderCd).with_seed(seed),
    )
    .run(|_, _| NativeBeepingMis::new(beeping_params));
    radio_row("native beeping MIS (sender-side CD)", &graph, &r);

    let nocd_params = NoCdParams::for_n(n, delta);
    let r = Simulator::new(&graph, SimConfig::new(ChannelModel::NoCd).with_seed(seed))
        .run(|_, _| NoCdMis::new(nocd_params));
    radio_row("Algorithm 2 (no-CD)", &graph, &r);

    let ld_params = LowDegreeParams::for_n(n, delta);
    let r = Simulator::new(&graph, SimConfig::new(ChannelModel::NoCd).with_seed(seed))
        .run(|_, _| LowDegreeMis::new(ld_params));
    radio_row("LowDegreeMIS / Davies-style (no-CD)", &graph, &r);

    let r = Simulator::new(&graph, SimConfig::new(ChannelModel::NoCd).with_seed(seed))
        .run(|_, _| NoCdNaive::new(cd_params, NaiveSimParams::for_n(n, delta)));
    radio_row("naive Luby over backoff (no-CD)", &graph, &r);

    println!("{}", "-".repeat(85));
    let r = CongestSim::new(&graph, seed).run(|_, _| LubyCongest::new(n));
    println!(
        "{:<42} | {:>7} | {:>10} | {:>8} | {}",
        "Luby (wired SLEEPING-CONGEST)",
        r.max_awake(),
        format!("{:.1}", r.avg_awake()),
        r.rounds,
        if r.is_correct_mis(&graph) {
            "✓"
        } else {
            "✗"
        }
    );
    let r = CongestSim::new(&graph, seed).run(|_, _| GhaffariCongest::new(n, delta));
    println!(
        "{:<42} | {:>7} | {:>10} | {:>8} | {}",
        "Ghaffari (wired SLEEPING-CONGEST)",
        r.max_awake(),
        format!("{:.1}", r.avg_awake()),
        r.rounds,
        if r.is_correct_mis(&graph) {
            "✓"
        } else {
            "✗"
        }
    );

    println!();
    println!("Read down the E(max) column: wired ≲ Algorithm 1 ≪ naive CD Luby, and in the");
    println!("no-CD model Algorithm 2 ≪ Davies-style ≪ naive — the paper's Theorems 2 & 10.");
}
