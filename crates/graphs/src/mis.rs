//! Maximal-independent-set verification and sequential baselines.
//!
//! An MIS (paper §1.2) is a set M ⊆ V such that (i) no two nodes of M are
//! adjacent, and (ii) every node is in M or has a neighbor in M. Sets are
//! represented as `&[bool]` membership masks indexed by node id.

use crate::graph::{Graph, NodeId};
use crate::rng::PortableRng;

/// The first structural violation found when checking a claimed MIS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MisViolation {
    /// The mask length does not match the graph size.
    WrongLength {
        /// Mask length supplied.
        got: usize,
        /// Number of nodes expected.
        expected: usize,
    },
    /// Two adjacent nodes are both in the set.
    NotIndependent {
        /// First endpoint (in the set).
        u: NodeId,
        /// Second endpoint (in the set, adjacent to `u`).
        v: NodeId,
    },
    /// A node is neither in the set nor adjacent to a node in the set.
    NotDominated {
        /// The uncovered node.
        v: NodeId,
    },
}

impl std::fmt::Display for MisViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MisViolation::WrongLength { got, expected } => {
                write!(f, "membership mask has length {got}, expected {expected}")
            }
            MisViolation::NotIndependent { u, v } => {
                write!(f, "adjacent nodes {u} and {v} are both in the set")
            }
            MisViolation::NotDominated { v } => {
                write!(f, "node {v} is neither in the set nor dominated by it")
            }
        }
    }
}

impl std::error::Error for MisViolation {}

/// Checks independence: no edge has both endpoints in `set`.
///
/// A mask of the wrong length is `false`, matching the
/// [`MisViolation::WrongLength`] classification of [`verify_mis`] — all
/// checkers in this module treat a malformed mask as a failed check, never
/// a panic.
pub fn is_independent(g: &Graph, set: &[bool]) -> bool {
    set.len() == g.len() && g.edges().all(|(u, v)| !(set[u] && set[v]))
}

/// Checks maximality (domination): every node is in `set` or has a neighbor
/// in `set`.
///
/// A mask of the wrong length is `false`, matching the
/// [`MisViolation::WrongLength`] classification of [`verify_mis`].
pub fn is_maximal(g: &Graph, set: &[bool]) -> bool {
    set.len() == g.len()
        && g.nodes()
            .all(|v| set[v] || g.neighbors(v).iter().any(|&u| set[u]))
}

/// Checks both MIS conditions. Equivalent to `verify_mis(g, set).is_ok()`
/// (and implemented as exactly that), so the boolean and diagnostic
/// checkers can never disagree — including on wrong-length masks, which
/// are `false` here and [`MisViolation::WrongLength`] there.
pub fn is_mis(g: &Graph, set: &[bool]) -> bool {
    verify_mis(g, set).is_ok()
}

/// Full check returning the first violation, for diagnostic output.
///
/// # Errors
///
/// Returns the first [`MisViolation`] encountered (length, then
/// independence, then domination).
pub fn verify_mis(g: &Graph, set: &[bool]) -> Result<(), MisViolation> {
    if set.len() != g.len() {
        return Err(MisViolation::WrongLength {
            got: set.len(),
            expected: g.len(),
        });
    }
    for (u, v) in g.edges() {
        if set[u] && set[v] {
            return Err(MisViolation::NotIndependent { u, v });
        }
    }
    for v in g.nodes() {
        if !set[v] && !g.neighbors(v).iter().any(|&u| set[u]) {
            return Err(MisViolation::NotDominated { v });
        }
    }
    Ok(())
}

/// Fault-aware variant of [`verify_mis`]: checks that `set` is an MIS of
/// the subgraph induced by the `healthy` nodes.
///
/// A non-healthy node's membership claim is ignored (it neither blocks
/// neighbors nor counts as coverage), and non-healthy nodes are not
/// required to be dominated. With `healthy` all-`true` this is exactly
/// [`verify_mis`]. The parallel counterpart
/// [`crate::parallel::verify_mis_induced_par`] returns byte-identical
/// results.
///
/// # Errors
///
/// Returns the first [`MisViolation`] in canonical scan order: length,
/// then independence over induced edges in ascending `(u, v)` order, then
/// domination over healthy nodes in ascending order.
///
/// # Panics
///
/// Panics if `healthy.len() != g.len()` — a malformed healthy mask is a
/// caller bug, unlike a claimed MIS mask of the wrong length, which is a
/// *finding* reported as [`MisViolation::WrongLength`].
pub fn verify_mis_induced(g: &Graph, set: &[bool], healthy: &[bool]) -> Result<(), MisViolation> {
    if set.len() != g.len() {
        return Err(MisViolation::WrongLength {
            got: set.len(),
            expected: g.len(),
        });
    }
    assert_eq!(healthy.len(), g.len(), "healthy mask length mismatch");
    let in_set = |v: NodeId| set[v] && healthy[v];
    for v in g.nodes() {
        if !in_set(v) {
            continue;
        }
        for &u in g.neighbors(v) {
            if u > v && in_set(u) {
                return Err(MisViolation::NotIndependent { u: v, v: u });
            }
        }
    }
    for v in g.nodes() {
        if !healthy[v] || in_set(v) {
            continue;
        }
        if !g.neighbors(v).iter().any(|&u| in_set(u)) {
            return Err(MisViolation::NotDominated { v });
        }
    }
    Ok(())
}

/// Sequential greedy MIS scanning nodes in id order. Deterministic; used as
/// the ground-truth baseline in tests.
pub fn greedy_mis(g: &Graph) -> Vec<bool> {
    greedy_mis_in_order(g, g.nodes())
}

/// Sequential greedy MIS scanning nodes in a uniformly random order.
///
/// The shuffle is driven by [`PortableRng`], so for a fixed `(graph, seed)`
/// the output mask is byte-identical on every platform and under every
/// toolchain — it is safe to pin in committed tables and regression tests.
/// (Earlier revisions used `rand`'s `SmallRng`, whose stream is explicitly
/// unstable across `rand` versions and platforms; a pinned regression test
/// now freezes the portable stream.)
pub fn random_greedy_mis(g: &Graph, seed: u64) -> Vec<bool> {
    let mut order: Vec<NodeId> = g.nodes().collect();
    PortableRng::new(seed).shuffle(&mut order);
    greedy_mis_in_order(g, order)
}

/// Sequential greedy MIS scanning nodes in the order produced by `order`.
///
/// `order` need not be a permutation:
///
/// - **Duplicates** are no-ops — a node already in the set (or blocked by
///   one) is skipped, so repeating an id never changes the result.
/// - **Partial orders** are allowed — nodes missing from `order` are never
///   considered, so the result is an independent set that is maximal only
///   w.r.t. the visited nodes.
///
/// # Panics
///
/// Panics if `order` yields an id `>= g.len()`.
pub fn greedy_mis_in_order(g: &Graph, order: impl IntoIterator<Item = NodeId>) -> Vec<bool> {
    let mut in_set = vec![false; g.len()];
    let mut blocked = vec![false; g.len()];
    for v in order {
        if !blocked[v] && !in_set[v] {
            in_set[v] = true;
            for &u in g.neighbors(v) {
                blocked[u] = true;
            }
        }
    }
    in_set
}

/// Checks that `matching` (edge list) is a *maximal matching* of `g`:
/// edges are disjoint, present in `g`, and every edge of `g` shares an
/// endpoint with a matched edge.
pub fn is_maximal_matching(g: &Graph, matching: &[(NodeId, NodeId)]) -> bool {
    let mut matched = vec![false; g.len()];
    for &(u, v) in matching {
        if !g.has_edge(u, v) || matched[u] || matched[v] {
            return false;
        }
        matched[u] = true;
        matched[v] = true;
    }
    g.edges().all(|(u, v)| matched[u] || matched[v])
}

/// Checks that `colors` is a proper vertex coloring of `g` (every node
/// colored, adjacent nodes differ). `usize::MAX` marks "uncolored".
pub fn is_proper_coloring(g: &Graph, colors: &[usize]) -> bool {
    colors.len() == g.len()
        && colors.iter().all(|&c| c != usize::MAX)
        && g.edges().all(|(u, v)| colors[u] != colors[v])
}

/// Size of the set (number of `true` entries).
pub fn set_size(set: &[bool]) -> usize {
    set.iter().filter(|&&b| b).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn greedy_on_path() {
        let g = generators::path(5);
        let set = greedy_mis(&g);
        assert_eq!(set, vec![true, false, true, false, true]);
        assert!(is_mis(&g, &set));
    }

    #[test]
    fn greedy_on_clique_picks_one() {
        let g = generators::clique(8);
        let set = greedy_mis(&g);
        assert_eq!(set_size(&set), 1);
        assert!(is_mis(&g, &set));
    }

    #[test]
    fn empty_graph_everyone_in() {
        let g = generators::empty(6);
        let set = greedy_mis(&g);
        assert_eq!(set_size(&set), 6);
        assert!(is_mis(&g, &set));
    }

    #[test]
    fn detects_non_independent() {
        let g = generators::path(3);
        let set = vec![true, true, false];
        assert!(!is_independent(&g, &set));
        assert_eq!(
            verify_mis(&g, &set),
            Err(MisViolation::NotIndependent { u: 0, v: 1 })
        );
    }

    #[test]
    fn detects_non_maximal() {
        let g = generators::path(5);
        let set = vec![true, false, false, false, true];
        assert!(is_independent(&g, &set));
        assert!(!is_maximal(&g, &set));
        assert_eq!(
            verify_mis(&g, &set),
            Err(MisViolation::NotDominated { v: 2 })
        );
    }

    #[test]
    fn detects_wrong_length() {
        let g = generators::path(3);
        assert_eq!(
            verify_mis(&g, &[true]),
            Err(MisViolation::WrongLength {
                got: 1,
                expected: 3
            })
        );
    }

    #[test]
    fn boolean_checkers_agree_with_verify_on_wrong_length() {
        // One contract across the module: a malformed mask fails the
        // boolean checks exactly where verify_mis reports WrongLength.
        let g = generators::path(3);
        for bad in [&[][..], &[true][..], &[true; 4][..]] {
            assert!(!is_independent(&g, bad));
            assert!(!is_maximal(&g, bad));
            assert!(!is_mis(&g, bad));
            assert!(matches!(
                verify_mis(&g, bad),
                Err(MisViolation::WrongLength { .. })
            ));
        }
        // And is_mis is literally verify_mis's verdict on well-formed input.
        let good = greedy_mis(&g);
        assert_eq!(is_mis(&g, &good), verify_mis(&g, &good).is_ok());
    }

    #[test]
    fn random_greedy_pinned_output() {
        // Freezes the PortableRng-driven shuffle: this mask must survive
        // platform, rustc, and `rand` upgrades unchanged.
        let g = generators::path(8);
        let set = random_greedy_mis(&g, 42);
        assert_eq!(
            set,
            vec![false, true, false, true, false, true, false, true]
        );
        assert!(is_mis(&g, &set));
    }

    #[test]
    fn greedy_in_order_ignores_duplicates() {
        let g = generators::path(5);
        let once = greedy_mis_in_order(&g, [4usize, 2, 0]);
        let dup = greedy_mis_in_order(&g, [4usize, 4, 2, 4, 2, 0, 2, 0]);
        assert_eq!(once, dup);
        assert_eq!(once, vec![true, false, true, false, true]);
        // A duplicate of a node adjacent to a set member is also a no-op.
        let adjacent_dup = greedy_mis_in_order(&g, [0usize, 1, 1, 2]);
        assert_eq!(adjacent_dup, vec![true, false, true, false, false]);
    }

    #[test]
    #[should_panic]
    fn greedy_in_order_rejects_out_of_range_ids() {
        let g = generators::path(3);
        let _ = greedy_mis_in_order(&g, [0usize, 5]);
    }

    #[test]
    fn induced_verify_matches_plain_when_all_healthy() {
        for g in [
            generators::path(7),
            generators::gnp(60, 0.1, 2),
            generators::star(9),
        ] {
            let healthy = vec![true; g.len()];
            let good = greedy_mis(&g);
            assert_eq!(verify_mis_induced(&g, &good, &healthy), Ok(()));
            let all = vec![true; g.len()];
            assert_eq!(verify_mis_induced(&g, &all, &healthy), verify_mis(&g, &all));
            let none = vec![false; g.len()];
            assert_eq!(
                verify_mis_induced(&g, &none, &healthy),
                verify_mis(&g, &none)
            );
        }
    }

    #[test]
    fn induced_verify_ignores_faulty_nodes() {
        // Path 0-1-2-3 with node 2 down: {0, 3} is an MIS of the induced
        // subgraph, node 2's claims are ignored, and node 2 itself needs
        // no coverage.
        let g = generators::path(4);
        let healthy = vec![true, true, false, true];
        assert_eq!(
            verify_mis_induced(&g, &[true, false, false, true], &healthy),
            Ok(())
        );
        // A faulty node in the claimed set neither violates independence...
        assert_eq!(
            verify_mis_induced(&g, &[true, false, true, true], &healthy),
            Ok(())
        );
        // ...nor counts as coverage for a healthy neighbor.
        assert_eq!(
            verify_mis_induced(&g, &[true, false, true, false], &healthy),
            Err(MisViolation::NotDominated { v: 3 })
        );
        // Two healthy adjacent members still violate independence.
        assert_eq!(
            verify_mis_induced(&g, &[true, true, false, true], &healthy),
            Err(MisViolation::NotIndependent { u: 0, v: 1 })
        );
        // Wrong-length set is a finding, not a panic.
        assert_eq!(
            verify_mis_induced(&g, &[true], &healthy),
            Err(MisViolation::WrongLength {
                got: 1,
                expected: 4
            })
        );
    }

    #[test]
    #[should_panic(expected = "healthy mask length mismatch")]
    fn induced_verify_rejects_bad_healthy_len() {
        let g = generators::path(3);
        let _ = verify_mis_induced(&g, &[false; 3], &[true; 2]);
    }

    #[test]
    fn random_greedy_valid_on_many_graphs() {
        for (i, g) in [
            generators::gnp(120, 0.08, 3),
            generators::star(50),
            generators::grid2d(8, 9),
            generators::random_tree(77, 4),
            generators::lower_bound_family(40),
        ]
        .iter()
        .enumerate()
        {
            for seed in 0..5u64 {
                let set = random_greedy_mis(g, seed);
                assert!(is_mis(g, &set), "graph #{i} seed {seed}");
            }
        }
    }

    #[test]
    fn violation_messages_nonempty() {
        assert!(!MisViolation::NotDominated { v: 3 }.to_string().is_empty());
        assert!(!MisViolation::NotIndependent { u: 1, v: 2 }
            .to_string()
            .is_empty());
    }

    #[test]
    fn matching_checker() {
        let g = generators::path(5); // edges 01,12,23,34
        assert!(is_maximal_matching(&g, &[(0, 1), (2, 3)]));
        // Not maximal: edge (3,4) uncovered.
        assert!(!is_maximal_matching(&g, &[(1, 2)]));
        // Shared endpoint.
        assert!(!is_maximal_matching(&g, &[(0, 1), (1, 2), (3, 4)]));
        // Non-edge.
        assert!(!is_maximal_matching(&g, &[(0, 2), (3, 4)]));
        // Empty matching maximal only on empty graphs.
        assert!(!is_maximal_matching(&g, &[]));
        assert!(is_maximal_matching(&generators::empty(3), &[]));
    }

    #[test]
    fn coloring_checker() {
        let g = generators::cycle(4);
        assert!(is_proper_coloring(&g, &[0, 1, 0, 1]));
        assert!(!is_proper_coloring(&g, &[0, 0, 1, 1]));
        assert!(!is_proper_coloring(&g, &[0, 1, 0]));
        assert!(!is_proper_coloring(&g, &[0, 1, 0, usize::MAX]));
    }

    #[test]
    fn partial_order_greedy_is_independent() {
        let g = generators::cycle(9);
        let set = greedy_mis_in_order(&g, [0usize, 3, 6]);
        assert!(is_independent(&g, &set));
        assert_eq!(set_size(&set), 3);
    }
}
