//! Wired SLEEPING-CONGEST simulator and reference MIS algorithms.
//!
//! The SLEEPING-CONGEST model (\[13\], \[20\] in the paper's bibliography) is
//! the standard CONGEST message-passing model plus the ability to sleep:
//! in each synchronous round an *awake* node broadcasts at most one
//! O(log n)-bit message to all neighbors and receives every message sent by
//! an awake neighbor — no collisions, unlike radio. Only awake rounds count
//! towards the awake (energy) complexity.
//!
//! This crate exists for two reasons:
//!
//! 1. **Ground truth**: the radio `LowDegreeMIS` in `radio-mis` simulates
//!    Ghaffari's algorithm over lossy backoffs; [`ghaffari::GhaffariCongest`]
//!    is the exact dynamics it approximates, so the two can be
//!    cross-validated.
//! 2. **Context baseline** (experiment E13): the paper contrasts radio
//!    energy complexities with what the wired sleeping model achieves;
//!    [`luby::LubyCongest`] and [`ghaffari::GhaffariCongest`] provide those
//!    reference numbers.
//!
//! # Example
//!
//! ```
//! use congest_sim::{engine::CongestSim, luby::LubyCongest};
//! use mis_graphs::generators;
//!
//! let g = generators::gnp(100, 0.08, 3);
//! let report = CongestSim::new(&g, 7).run(|_, _| LubyCongest::new(100));
//! assert!(report.is_correct_mis(&g));
//! println!("awake complexity = {}", report.max_awake());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod engine;
pub mod ghaffari;
pub mod luby;

pub use engine::{CongestProtocol, CongestReport, CongestSim, NextWake};
pub use ghaffari::GhaffariCongest;
pub use luby::LubyCongest;
