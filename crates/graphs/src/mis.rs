//! Maximal-independent-set verification and sequential baselines.
//!
//! An MIS (paper §1.2) is a set M ⊆ V such that (i) no two nodes of M are
//! adjacent, and (ii) every node is in M or has a neighbor in M. Sets are
//! represented as `&[bool]` membership masks indexed by node id.

use crate::graph::{Graph, NodeId};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The first structural violation found when checking a claimed MIS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MisViolation {
    /// The mask length does not match the graph size.
    WrongLength {
        /// Mask length supplied.
        got: usize,
        /// Number of nodes expected.
        expected: usize,
    },
    /// Two adjacent nodes are both in the set.
    NotIndependent {
        /// First endpoint (in the set).
        u: NodeId,
        /// Second endpoint (in the set, adjacent to `u`).
        v: NodeId,
    },
    /// A node is neither in the set nor adjacent to a node in the set.
    NotDominated {
        /// The uncovered node.
        v: NodeId,
    },
}

impl std::fmt::Display for MisViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MisViolation::WrongLength { got, expected } => {
                write!(f, "membership mask has length {got}, expected {expected}")
            }
            MisViolation::NotIndependent { u, v } => {
                write!(f, "adjacent nodes {u} and {v} are both in the set")
            }
            MisViolation::NotDominated { v } => {
                write!(f, "node {v} is neither in the set nor dominated by it")
            }
        }
    }
}

impl std::error::Error for MisViolation {}

/// Checks independence: no edge has both endpoints in `set`.
///
/// # Panics
///
/// Panics if `set.len() != g.len()`.
pub fn is_independent(g: &Graph, set: &[bool]) -> bool {
    assert_eq!(set.len(), g.len(), "mask length mismatch");
    g.edges().all(|(u, v)| !(set[u] && set[v]))
}

/// Checks maximality (domination): every node is in `set` or has a neighbor
/// in `set`.
///
/// # Panics
///
/// Panics if `set.len() != g.len()`.
pub fn is_maximal(g: &Graph, set: &[bool]) -> bool {
    assert_eq!(set.len(), g.len(), "mask length mismatch");
    g.nodes()
        .all(|v| set[v] || g.neighbors(v).iter().any(|&u| set[u]))
}

/// Checks both MIS conditions.
///
/// # Panics
///
/// Panics if `set.len() != g.len()`.
pub fn is_mis(g: &Graph, set: &[bool]) -> bool {
    is_independent(g, set) && is_maximal(g, set)
}

/// Full check returning the first violation, for diagnostic output.
///
/// # Errors
///
/// Returns the first [`MisViolation`] encountered (length, then
/// independence, then domination).
pub fn verify_mis(g: &Graph, set: &[bool]) -> Result<(), MisViolation> {
    if set.len() != g.len() {
        return Err(MisViolation::WrongLength {
            got: set.len(),
            expected: g.len(),
        });
    }
    for (u, v) in g.edges() {
        if set[u] && set[v] {
            return Err(MisViolation::NotIndependent { u, v });
        }
    }
    for v in g.nodes() {
        if !set[v] && !g.neighbors(v).iter().any(|&u| set[u]) {
            return Err(MisViolation::NotDominated { v });
        }
    }
    Ok(())
}

/// Sequential greedy MIS scanning nodes in id order. Deterministic; used as
/// the ground-truth baseline in tests.
pub fn greedy_mis(g: &Graph) -> Vec<bool> {
    greedy_mis_in_order(g, g.nodes())
}

/// Sequential greedy MIS scanning nodes in a uniformly random order.
pub fn random_greedy_mis(g: &Graph, seed: u64) -> Vec<bool> {
    let mut order: Vec<NodeId> = g.nodes().collect();
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    greedy_mis_in_order(g, order)
}

/// Sequential greedy MIS scanning nodes in the order produced by `order`.
/// Nodes missing from `order` are never considered, so passing a partial
/// order yields an independent set that is maximal only w.r.t. visited nodes.
pub fn greedy_mis_in_order(g: &Graph, order: impl IntoIterator<Item = NodeId>) -> Vec<bool> {
    let mut in_set = vec![false; g.len()];
    let mut blocked = vec![false; g.len()];
    for v in order {
        if !blocked[v] && !in_set[v] {
            in_set[v] = true;
            for &u in g.neighbors(v) {
                blocked[u] = true;
            }
        }
    }
    in_set
}

/// Checks that `matching` (edge list) is a *maximal matching* of `g`:
/// edges are disjoint, present in `g`, and every edge of `g` shares an
/// endpoint with a matched edge.
pub fn is_maximal_matching(g: &Graph, matching: &[(NodeId, NodeId)]) -> bool {
    let mut matched = vec![false; g.len()];
    for &(u, v) in matching {
        if !g.has_edge(u, v) || matched[u] || matched[v] {
            return false;
        }
        matched[u] = true;
        matched[v] = true;
    }
    g.edges().all(|(u, v)| matched[u] || matched[v])
}

/// Checks that `colors` is a proper vertex coloring of `g` (every node
/// colored, adjacent nodes differ). `usize::MAX` marks "uncolored".
pub fn is_proper_coloring(g: &Graph, colors: &[usize]) -> bool {
    colors.len() == g.len()
        && colors.iter().all(|&c| c != usize::MAX)
        && g.edges().all(|(u, v)| colors[u] != colors[v])
}

/// Size of the set (number of `true` entries).
pub fn set_size(set: &[bool]) -> usize {
    set.iter().filter(|&&b| b).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn greedy_on_path() {
        let g = generators::path(5);
        let set = greedy_mis(&g);
        assert_eq!(set, vec![true, false, true, false, true]);
        assert!(is_mis(&g, &set));
    }

    #[test]
    fn greedy_on_clique_picks_one() {
        let g = generators::clique(8);
        let set = greedy_mis(&g);
        assert_eq!(set_size(&set), 1);
        assert!(is_mis(&g, &set));
    }

    #[test]
    fn empty_graph_everyone_in() {
        let g = generators::empty(6);
        let set = greedy_mis(&g);
        assert_eq!(set_size(&set), 6);
        assert!(is_mis(&g, &set));
    }

    #[test]
    fn detects_non_independent() {
        let g = generators::path(3);
        let set = vec![true, true, false];
        assert!(!is_independent(&g, &set));
        assert_eq!(
            verify_mis(&g, &set),
            Err(MisViolation::NotIndependent { u: 0, v: 1 })
        );
    }

    #[test]
    fn detects_non_maximal() {
        let g = generators::path(5);
        let set = vec![true, false, false, false, true];
        assert!(is_independent(&g, &set));
        assert!(!is_maximal(&g, &set));
        assert_eq!(
            verify_mis(&g, &set),
            Err(MisViolation::NotDominated { v: 2 })
        );
    }

    #[test]
    fn detects_wrong_length() {
        let g = generators::path(3);
        assert_eq!(
            verify_mis(&g, &[true]),
            Err(MisViolation::WrongLength {
                got: 1,
                expected: 3
            })
        );
    }

    #[test]
    fn random_greedy_valid_on_many_graphs() {
        for (i, g) in [
            generators::gnp(120, 0.08, 3),
            generators::star(50),
            generators::grid2d(8, 9),
            generators::random_tree(77, 4),
            generators::lower_bound_family(40),
        ]
        .iter()
        .enumerate()
        {
            for seed in 0..5u64 {
                let set = random_greedy_mis(g, seed);
                assert!(is_mis(g, &set), "graph #{i} seed {seed}");
            }
        }
    }

    #[test]
    fn violation_messages_nonempty() {
        assert!(!MisViolation::NotDominated { v: 3 }.to_string().is_empty());
        assert!(!MisViolation::NotIndependent { u: 1, v: 2 }
            .to_string()
            .is_empty());
    }

    #[test]
    fn matching_checker() {
        let g = generators::path(5); // edges 01,12,23,34
        assert!(is_maximal_matching(&g, &[(0, 1), (2, 3)]));
        // Not maximal: edge (3,4) uncovered.
        assert!(!is_maximal_matching(&g, &[(1, 2)]));
        // Shared endpoint.
        assert!(!is_maximal_matching(&g, &[(0, 1), (1, 2), (3, 4)]));
        // Non-edge.
        assert!(!is_maximal_matching(&g, &[(0, 2), (3, 4)]));
        // Empty matching maximal only on empty graphs.
        assert!(!is_maximal_matching(&g, &[]));
        assert!(is_maximal_matching(&generators::empty(3), &[]));
    }

    #[test]
    fn coloring_checker() {
        let g = generators::cycle(4);
        assert!(is_proper_coloring(&g, &[0, 1, 0, 1]));
        assert!(!is_proper_coloring(&g, &[0, 0, 1, 1]));
        assert!(!is_proper_coloring(&g, &[0, 1, 0]));
        assert!(!is_proper_coloring(&g, &[0, 1, 0, usize::MAX]));
    }

    #[test]
    fn partial_order_greedy_is_independent() {
        let g = generators::cycle(9);
        let set = greedy_mis_in_order(&g, [0usize, 3, 6]);
        assert!(is_independent(&g, &set));
        assert_eq!(set_size(&set), 3);
    }
}
