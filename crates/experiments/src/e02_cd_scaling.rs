//! E2 — Theorem 2: CD-model MIS scaling.
//!
//! Sweeps n on G(n, p)-with-constant-average-degree workloads, measuring
//! max energy (expect Θ(log n)), rounds (expect O(log²n) schedule, usually
//! much less measured), and success rate (expect ≥ 1 − 1/n). A second
//! table fixes n and varies the topology family.

use crate::harness::{pct, ExpConfig, ExperimentOutput, Section};
use crate::orchestrator::{Orchestrator, UnitKey};
use mis_graphs::generators::Family;
use mis_stats::fit::{best_fit, fit_model, GrowthModel};
use mis_stats::table::fmt_num;
use mis_stats::timeline::exp_decay_fit;
use mis_stats::{LineChart, Summary, Table};
use radio_mis::cd::CdMis;
use radio_mis::params::CdParams;
use radio_netsim::{ChannelModel, SimConfig, Simulator};
use serde::{Deserialize, Serialize};

/// Cached value of the undecided-decay cell: table rows at Luby-phase
/// boundaries plus the (round, undecided) series the decay fit consumes.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct DecaySample {
    /// (phase, round, undecided, awake, cumulative energy) per boundary.
    rows: Vec<(u64, u64, u32, u32, u64)>,
    series: Vec<(f64, f64)>,
    cost: u64,
}

/// Runs E2.
pub fn run(cfg: &ExpConfig, orch: &Orchestrator) -> ExperimentOutput {
    // The sparse wake-queue engine makes the top sizes affordable: CdMis
    // spends almost all rounds asleep, so full mode now sweeps to 2^17
    // (131k nodes, 16x the old 2^13 ceiling).
    let ns = cfg.ns(7, if cfg.quick { 9 } else { 17 });
    let trials = cfg.trials(30);
    let mut scale_table = Table::new([
        "n",
        "energy (mean ± ci)",
        "energy (worst)",
        "rounds (mean)",
        "success",
    ]);
    let mut energy_means = Vec::new();
    let mut round_means = Vec::new();
    let mut nsf = Vec::new();
    for &n in &ns {
        let g = Family::GnpAvgDegree(8).generate(n, cfg.seed ^ n as u64);
        let params = CdParams::for_n(n);
        let stats = orch.trials(
            UnitKey::new("e2", format!("scale/n={n}"))
                .with(
                    "graph",
                    format!(
                        "{}/seed={:#x}",
                        Family::GnpAvgDegree(8).label(),
                        cfg.seed ^ n as u64
                    ),
                )
                .with("alg", "CdMis")
                .with("params", format!("{params:?}")),
            &g,
            SimConfig::new(ChannelModel::Cd)
                .with_seed(cfg.seed ^ (n as u64) << 8)
                .with_threads(cfg.threads),
            trials,
            |_, _| CdMis::new(params),
        );
        let es = Summary::of(&stats.energies);
        let rs = Summary::of(&stats.rounds);
        scale_table.push_row([
            n.to_string(),
            format!("{} ± {}", fmt_num(es.mean), fmt_num(es.ci95)),
            fmt_num(es.max),
            fmt_num(rs.mean),
            pct(stats.correct, stats.successes()),
        ]);
        energy_means.push(es.mean);
        round_means.push(rs.mean);
        nsf.push(n as f64);
    }
    let (e_model, e_fit) = best_fit(&nsf, &energy_means);
    let log_fit = fit_model(GrowthModel::LogN, &nsf, &energy_means);
    let (r_model, r_fit) = best_fit(&nsf, &round_means);

    let mut energy_chart = LineChart::new(
        "Algorithm 1 (CD): max energy vs n",
        "n (log scale)",
        "awake rounds",
    )
    .with_log_x();
    energy_chart.push_series(
        "measured mean",
        nsf.iter().copied().zip(energy_means.iter().copied()),
    );
    energy_chart.push_series(
        format!("fit {:.2}*log2 n + {:.1}", log_fit.slope, log_fit.intercept),
        nsf.iter().map(|&n| {
            (
                n,
                log_fit.intercept + log_fit.slope * GrowthModel::LogN.eval(n),
            )
        }),
    );
    let mut rounds_chart =
        LineChart::new("Algorithm 1 (CD): rounds vs n", "n (log scale)", "rounds").with_log_x();
    rounds_chart.push_series(
        "measured mean",
        nsf.iter().copied().zip(round_means.iter().copied()),
    );

    // Per-family table at a fixed size.
    let n_fam = if cfg.quick { 256 } else { 2048 };
    let fam_trials = cfg.trials(15);
    let mut fam_table = Table::new(["family", "Δ", "energy (mean)", "rounds (mean)", "success"]);
    for fam in [
        Family::GnpAvgDegree(8),
        Family::GeometricAvgDegree(8),
        Family::Grid,
        Family::Star,
        Family::Clique,
        Family::RandomTree,
        Family::LowerBound,
        Family::Empty,
    ] {
        let n = if fam == Family::Clique {
            n_fam.min(512)
        } else {
            n_fam
        };
        let g = fam.generate(n, cfg.seed ^ 0xFA);
        let params = CdParams::for_n(n);
        let stats = orch.trials(
            UnitKey::new("e2", format!("families/{}", fam.label()))
                .with(
                    "graph",
                    format!("{}/seed={:#x}", fam.label(), cfg.seed ^ 0xFA),
                )
                .with("alg", "CdMis")
                .with("params", format!("{params:?}")),
            &g,
            SimConfig::new(ChannelModel::Cd)
                .with_seed(cfg.seed ^ 0xFB)
                .with_threads(cfg.threads),
            fam_trials,
            |_, _| CdMis::new(params),
        );
        fam_table.push_row([
            fam.label(),
            g.max_degree().to_string(),
            fmt_num(Summary::of(&stats.energies).mean),
            fmt_num(Summary::of(&stats.rounds).mean),
            pct(stats.correct, stats.successes()),
        ]);
    }

    // Undecided-population decay at the largest size, from the engine's
    // per-round metrics (Lemma 4's constant per-phase survival probability
    // predicts geometric decay of the undecided count).
    let n_big = *ns.last().expect("sweep is non-empty");
    let big_params = CdParams::for_n(n_big);
    // `threads` is absent from `fingerprint()` (thread-count invariance),
    // so the `sim` cache ingredient below stays stable across --threads.
    let decay_config = SimConfig::new(ChannelModel::Cd)
        .with_seed(cfg.seed ^ 0xDECA)
        .with_round_metrics()
        .with_threads(cfg.threads);
    let decay = orch.unit_with_cost(
        &UnitKey::new("e2", format!("decay/n={n_big}"))
            .with(
                "graph",
                format!(
                    "{}/seed={:#x}",
                    Family::GnpAvgDegree(8).label(),
                    cfg.seed ^ n_big as u64
                ),
            )
            .with("alg", "CdMis")
            .with("params", format!("{big_params:?}"))
            .with("sim", decay_config.fingerprint()),
        || {
            let g_big = Family::GnpAvgDegree(8).generate(n_big, cfg.seed ^ n_big as u64);
            let report =
                Simulator::new(&g_big, decay_config.clone()).run(|_, _| CdMis::new(big_params));
            let timeline = report.metrics_timeline();
            let mut rows = Vec::new();
            for i in 0..=u64::from(big_params.phases()) {
                let boundary = i * big_params.phase_len();
                let Some(m) = timeline.iter().take_while(|m| m.round < boundary).last() else {
                    continue;
                };
                rows.push((i, m.round, m.undecided(), m.awake(), m.cumulative_energy));
                if m.undecided() == 0 {
                    break;
                }
            }
            DecaySample {
                rows,
                series: timeline
                    .iter()
                    .map(|m| (m.round as f64, f64::from(m.undecided())))
                    .collect(),
                cost: report.meters.iter().map(|m| m.energy()).sum(),
            }
        },
        |d| d.cost,
    );
    let mut decay_table = Table::new(["phase", "round", "undecided", "awake", "cum. energy"]);
    for &(i, round, undecided, awake, cum) in &decay.rows {
        decay_table.push_row([
            i.to_string(),
            round.to_string(),
            undecided.to_string(),
            awake.to_string(),
            cum.to_string(),
        ]);
    }
    let rounds_f: Vec<f64> = decay.series.iter().map(|&(r, _)| r).collect();
    let undecided_f: Vec<f64> = decay.series.iter().map(|&(_, u)| u).collect();
    let decay_finding = match exp_decay_fit(&rounds_f, &undecided_f) {
        Some(fit) => format!(
            "undecided population decays geometrically (rate {:.4}/round, half-life \
             {:.1} rounds ≈ {:.2} Luby phases, R² = {:.3} over {} records at n = {n_big}) — \
             the constant per-phase decay behind Theorem 2's O(log n) energy",
            fit.rate,
            fit.half_life(),
            fit.half_life() / big_params.phase_len() as f64,
            fit.r2,
            fit.points
        ),
        None => "undecided-decay fit skipped (run decided within two rounds)".to_string(),
    };

    ExperimentOutput {
        id: "e2",
        title: "CD-model MIS: energy and round scaling".into(),
        claim: "Theorem 2: Algorithm 1 outputs an MIS w.p. ≥ 1 − 1/n using O(log n) \
                energy and O(log²n) rounds."
            .into(),
        sections: vec![
            Section {
                caption: format!("n sweep on gnp-d8, {trials} trials each"),
                table: scale_table,
            },
            Section {
                caption: format!("topology families at n = {n_fam}"),
                table: fam_table,
            },
            Section {
                caption: format!(
                    "undecided population at Luby-phase boundaries (round metrics, n = {n_big})"
                ),
                table: decay_table,
            },
        ],
        findings: vec![
            decay_finding,
            format!(
                "energy best fit: {e_model} (R² = {:.3}); explicit log n fit: slope {:.2}, \
                 R² = {:.3} — consistent with the O(log n) claim",
                e_fit.r2, log_fit.slope, log_fit.r2
            ),
            format!(
                "rounds best fit: {r_model} (R² = {:.3}) — within the O(log²n) schedule",
                r_fit.r2
            ),
        ],
        charts: vec![
            ("e2_energy_vs_n".into(), energy_chart),
            ("e2_rounds_vs_n".into(), rounds_chart),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_has_log_energy() {
        let out = run(&ExpConfig::quick(5), &Orchestrator::ephemeral());
        assert_eq!(out.sections.len(), 3);
        assert!(out.findings.iter().any(|f| f.contains("log")));
        // The metrics-derived decay section has at least the phase-0 row.
        assert!(!out.sections[2].table.is_empty());
        assert!(out
            .findings
            .iter()
            .any(|f| f.contains("undecided population") || f.contains("undecided-decay")));
    }
}
