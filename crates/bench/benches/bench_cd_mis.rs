//! E2 family: Algorithm 1 (CD) full runs at increasing n.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mis_bench::workload;
use radio_mis::cd::CdMis;
use radio_mis::params::CdParams;
use radio_netsim::{ChannelModel, SimConfig, Simulator};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("cd_mis");
    group.sample_size(10);
    for n in [256usize, 1024, 4096] {
        let g = workload(n, 42);
        let params = CdParams::for_n(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let report = Simulator::new(&g, SimConfig::new(ChannelModel::Cd).with_seed(seed))
                    .run(|_, _| CdMis::new(params));
                assert!(report.completed);
                report.max_energy()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
