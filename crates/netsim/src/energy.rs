//! Per-node energy accounting (the sleeping model of §1.1).
//!
//! Only awake rounds — transmitting or listening — count towards energy.
//! The meter also records *when* a node decided and finished, which the
//! experiments use to study early termination.

use serde::{Deserialize, Serialize};

/// Energy ledger for one node across one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnergyMeter {
    /// Rounds spent transmitting.
    pub transmit_rounds: u64,
    /// Rounds spent listening.
    pub listen_rounds: u64,
    /// Round at which the node's status first became decided (in/out of
    /// MIS), if it ever did.
    pub decided_at: Option<u64>,
    /// Round after which the node was permanently retired (finished), if it
    /// ever was.
    pub finished_at: Option<u64>,
}

impl EnergyMeter {
    /// Creates a zeroed meter.
    pub fn new() -> EnergyMeter {
        EnergyMeter::default()
    }

    /// Total awake rounds — the node's energy use.
    pub fn energy(&self) -> u64 {
        self.transmit_rounds + self.listen_rounds
    }

    pub(crate) fn record_transmit(&mut self) {
        self.transmit_rounds += 1;
    }

    pub(crate) fn record_listen(&mut self) {
        self.listen_rounds += 1;
    }

    pub(crate) fn record_decided(&mut self, round: u64) {
        if self.decided_at.is_none() {
            self.decided_at = Some(round);
        }
    }

    /// Reopens the decision: the node's decided status was revoked (a
    /// self-healing wrapper demoted it, or a crash-recovery window wiped
    /// its state). The next decided transition stamps a fresh `decided_at`.
    pub(crate) fn record_reopened(&mut self) {
        self.decided_at = None;
    }

    pub(crate) fn record_finished(&mut self, round: u64) {
        if self.finished_at.is_none() {
            self.finished_at = Some(round);
        }
    }

    /// Wipes the lifecycle stamps when the node goes down for a recovery
    /// window: whatever it had decided or finished no longer stands.
    pub(crate) fn record_down(&mut self) {
        self.decided_at = None;
        self.finished_at = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates() {
        let mut m = EnergyMeter::new();
        m.record_transmit();
        m.record_listen();
        m.record_listen();
        assert_eq!(m.energy(), 3);
        assert_eq!(m.transmit_rounds, 1);
        assert_eq!(m.listen_rounds, 2);
    }

    #[test]
    fn first_decision_wins() {
        let mut m = EnergyMeter::new();
        m.record_decided(10);
        m.record_decided(20);
        assert_eq!(m.decided_at, Some(10));
        m.record_finished(30);
        m.record_finished(40);
        assert_eq!(m.finished_at, Some(30));
    }

    #[test]
    fn reopening_allows_a_fresh_decision_stamp() {
        let mut m = EnergyMeter::new();
        m.record_decided(10);
        m.record_reopened();
        assert_eq!(m.decided_at, None);
        m.record_decided(25);
        assert_eq!(m.decided_at, Some(25));
        m.record_finished(30);
        m.record_down();
        assert_eq!(m.decided_at, None);
        assert_eq!(m.finished_at, None);
        // Energy is never wiped: the rounds were spent.
        m.record_listen();
        assert_eq!(m.energy(), 1);
    }

    #[test]
    fn default_is_zero() {
        let m = EnergyMeter::default();
        assert_eq!(m.energy(), 0);
        assert_eq!(m.decided_at, None);
        assert_eq!(m.finished_at, None);
    }
}
