//! E3 — Theorem 10: no-CD MIS scaling.
//!
//! Sweeps n on constant-average-degree G(n, p), measuring max energy
//! (expect Θ(log²n·loglog n), empirically near-indistinguishable from
//! log²n at these sizes — both are reported), rounds (expect within the
//! O(log³n·log Δ) schedule), and success rate.

use crate::harness::{pct, ExpConfig, ExperimentOutput, Section};
use mis_graphs::generators::Family;
use mis_stats::fit::{best_fit, fit_model, GrowthModel};
use mis_stats::table::fmt_num;
use mis_stats::{LineChart, Summary, Table};
use radio_mis::nocd::NoCdMis;
use radio_mis::params::NoCdParams;
use radio_netsim::{run_trials, ChannelModel, SimConfig};

/// Runs E3.
pub fn run(cfg: &ExpConfig) -> ExperimentOutput {
    let ns = cfg.ns(6, if cfg.quick { 8 } else { 11 });
    let trials = cfg.trials(12);
    let mut table = Table::new([
        "n",
        "Δ",
        "energy (mean ± ci)",
        "energy (worst)",
        "rounds (mean)",
        "schedule T",
        "success",
    ]);
    let mut nsf = Vec::new();
    let mut energy_means = Vec::new();
    let mut round_means = Vec::new();
    for &n in &ns {
        let g = Family::GnpAvgDegree(8).generate(n, cfg.seed ^ n as u64);
        let params = NoCdParams::for_n(n, g.max_degree().max(2));
        let set = run_trials(
            &g,
            SimConfig::new(ChannelModel::NoCd).with_seed(cfg.seed ^ (n as u64) << 9),
            trials,
            |_, _| NoCdMis::new(params),
        );
        let es = Summary::of(&set.energies());
        let rs = Summary::of(&set.rounds());
        table.push_row([
            n.to_string(),
            g.max_degree().to_string(),
            format!("{} ± {}", fmt_num(es.mean), fmt_num(es.ci95)),
            fmt_num(es.max),
            fmt_num(rs.mean),
            params.total_rounds().to_string(),
            pct(
                set.outcomes.iter().filter(|o| o.correct).count(),
                set.len(),
            ),
        ]);
        nsf.push(n as f64);
        energy_means.push(es.mean);
        round_means.push(rs.mean);
    }
    let (e_model, e_fit) = best_fit(&nsf, &energy_means);
    let claimed = fit_model(GrowthModel::Log2NLogLogN, &nsf, &energy_means);
    let log3 = fit_model(GrowthModel::Log3N, &nsf, &round_means);
    let (r_model, r_fit) = best_fit(&nsf, &round_means);

    let mut chart = LineChart::new(
        "Algorithm 2 (no-CD): energy and rounds vs n",
        "n (log scale)",
        "rounds (log scale)",
    )
    .with_log_x()
    .with_log_y();
    chart.push_series(
        "max energy (mean)",
        nsf.iter().copied().zip(energy_means.iter().copied()),
    );
    chart.push_series(
        "rounds (mean)",
        nsf.iter().copied().zip(round_means.iter().copied()),
    );
    chart.push_series(
        format!("fit of energy: {:.1}*log^2 n loglog n", claimed.slope),
        nsf.iter().map(|&n| {
            (
                n,
                (claimed.intercept + claimed.slope * GrowthModel::Log2NLogLogN.eval(n)).max(1.0),
            )
        }),
    );

    ExperimentOutput {
        id: "e3",
        title: "no-CD MIS: energy and round scaling".into(),
        claim: "Theorem 10: Algorithm 2 outputs an MIS w.p. ≥ 1 − 1/n using \
                O(log²n·loglog n) energy in O(log³n·log Δ) rounds."
            .into(),
        sections: vec![Section {
            caption: format!("n sweep on gnp-d8, {trials} trials each"),
            table,
        }],
        findings: vec![
            format!(
                "energy best fit: {e_model} (R² = {:.3}); claimed log²n·loglog n model \
                 R² = {:.3} — the two are empirically indistinguishable at these sizes, \
                 and both are far below the round curve",
                e_fit.r2, claimed.r2
            ),
            format!(
                "rounds best fit: {r_model} (R² = {:.3}); log³n model R² = {:.3} — \
                 within the schedule bound",
                r_fit.r2, log3.r2
            ),
        ],
        charts: vec![("e3_energy_rounds_vs_n".into(), chart)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_completes() {
        let out = run(&ExpConfig::quick(7));
        assert_eq!(out.id, "e3");
        assert!(!out.sections[0].table.is_empty());
    }
}
