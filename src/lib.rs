//! # energy-mis
//!
//! A full reproduction of *"Energy-Efficient Maximal Independent Sets in
//! Radio Networks"* (PODC 2025): a synchronous radio-network simulator with
//! the sleeping/energy model, the paper's CD and no-CD MIS algorithms with
//! all their building blocks, baselines, and an evaluation harness that
//! validates every theorem and lemma empirically.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! - [`graphs`] — topologies, generators, MIS verification;
//! - [`netsim`] — the radio simulator (CD / no-CD / beeping channels,
//!   energy accounting);
//! - [`mis`] — the paper's algorithms and baselines;
//! - [`congest`] — the wired SLEEPING-CONGEST reference substrate;
//! - [`stats`] — summary statistics and complexity-fit utilities.
//!
//! # Quickstart
//!
//! ```
//! use energy_mis::graphs::generators;
//! use energy_mis::mis::cd::CdMis;
//! use energy_mis::mis::params::CdParams;
//! use energy_mis::netsim::{ChannelModel, SimConfig, Simulator};
//!
//! let graph = generators::gnp(200, 0.05, 1);
//! let params = CdParams::for_n(graph.len());
//! let config = SimConfig::new(ChannelModel::Cd).with_seed(42);
//! let report = Simulator::new(&graph, config)
//!     .run(|_, _| CdMis::new(params));
//! assert!(report.is_correct_mis(&graph));
//! println!(
//!     "energy = {} awake rounds, {} total rounds",
//!     report.max_energy(),
//!     report.rounds
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use congest_sim as congest;
pub use mis_graphs as graphs;
pub use mis_stats as stats;
pub use radio_mis as mis;
pub use radio_netsim as netsim;
