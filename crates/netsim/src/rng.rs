//! Deterministic random-stream derivation.
//!
//! Every simulation run takes a single 64-bit master seed. Per-node streams
//! are derived with SplitMix64 so that (a) runs are exactly reproducible,
//! (b) node streams are statistically independent, and (c) the engine's
//! processing order cannot influence any node's randomness.
//!
//! The deriver itself now lives in `mis_graphs::rng` (the solver's
//! priorities must match the simulator's seed streams bit for bit); this
//! module re-exports it so `radio_netsim::split_seed` keeps working and the
//! two crates can never drift apart.

pub use mis_graphs::rng::split_seed;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexports_the_shared_deriver() {
        // The facade path and the graphs-crate path are the same function;
        // the pinned output vectors live in mis_graphs::rng's own tests.
        assert_eq!(split_seed(42, 0), mis_graphs::rng::split_seed(42, 0));
        assert_eq!(split_seed(42, 0), 0xbdd7_3226_2feb_6e95);
    }
}
