//! End-to-end contract tests for the `mis-serve` daemon, over real
//! sockets: cold-then-warm submissions, live trace streaming against the
//! `JsonlTrace` file-format oracle, queue backpressure, and graceful
//! drain with cache persistence across restarts.

use mis_graphs::generators::Family;
use mis_serve::{JobRequest, JobStatus, ServeClient, ServeConfig, ServeHandle, Server};
use radio_mis::cd::CdMis;
use radio_mis::params::CdParams;
use radio_netsim::{ChannelModel, JsonlTrace, SimConfig, Simulator};
use std::path::{Path, PathBuf};
use std::thread::JoinHandle;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(120);

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mis-serve-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct TestServer {
    addr: String,
    handle: ServeHandle,
    daemon: JoinHandle<std::io::Result<mis_serve::ServeSummary>>,
}

impl TestServer {
    fn start(dir: &Path, workers: usize, queue_capacity: usize) -> TestServer {
        let cfg = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            cache_dir: Some(dir.to_path_buf()),
            workers,
            queue_capacity,
        };
        let server = Server::bind(cfg).expect("bind on a free port");
        let addr = server.local_addr().unwrap().to_string();
        let handle = server.handle();
        let daemon = std::thread::spawn(move || server.run());
        TestServer {
            addr,
            handle,
            daemon,
        }
    }

    fn client(&self, id: &str) -> ServeClient {
        ServeClient::new(self.addr.clone()).with_client_id(id)
    }

    fn stop(self) -> mis_serve::ServeSummary {
        self.handle.shutdown();
        self.daemon
            .join()
            .expect("daemon thread")
            .expect("clean drain")
    }
}

fn sim_request(seed: u64, trace: bool) -> JobRequest {
    JobRequest::Sim {
        algorithm: "cd".to_string(),
        family: "path".to_string(),
        n: 32,
        seed,
        trials: 2,
        trace,
        threads: 1,
    }
}

/// The headline contract: a warm re-submission returns the identical
/// payload with zero simulator runs, and the hit is visible in `/stats`.
#[test]
fn warm_resubmission_hits_with_identical_payload() {
    let dir = tmp_dir("warm");
    let server = TestServer::start(&dir, 2, 16);
    let client = server.client("warm-test");

    let cold = client
        .submit_and_wait(&sim_request(5, false), WAIT)
        .unwrap();
    assert_eq!(cold.status, JobStatus::Done);
    assert!(!cold.hit, "first submission must run the simulator");
    assert!(cold.payload.is_some());
    assert!(cold.cost > 0, "a fresh run has nonzero simulated cost");

    let warm = client.submit(&sim_request(5, false)).unwrap();
    assert_eq!(warm.status, JobStatus::Done, "warm answers need no polling");
    assert!(warm.hit, "same content address must hit");
    assert_eq!(warm.payload, cold.payload, "hit replays identical payload");
    assert_eq!(warm.id, cold.id, "the content address is the job id");

    let stats = client.stats().unwrap();
    assert_eq!(stats.submitted, 2);
    assert_eq!((stats.hits, stats.misses, stats.failed), (1, 1, 0));
    assert_eq!(stats.clients.len(), 1);
    assert_eq!(stats.clients[0].client, "warm-test");
    assert!(stats.total_cost > 0, "manifest cost feeds /stats");

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A different seed is a different content address: no false sharing.
#[test]
fn distinct_seeds_never_collide() {
    let dir = tmp_dir("seeds");
    let server = TestServer::start(&dir, 2, 16);
    let client = server.client("seeds");

    let a = client
        .submit_and_wait(&sim_request(1, false), WAIT)
        .unwrap();
    let b = client
        .submit_and_wait(&sim_request(2, false), WAIT)
        .unwrap();
    assert_ne!(a.id, b.id);
    assert!(!a.hit && !b.hit);

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The streamed trace frames of a live job are byte-identical to what a
/// local `JsonlTrace` run over the same config writes to a file.
#[test]
fn streamed_frames_match_jsonl_file_oracle() {
    let dir = tmp_dir("stream");
    let server = TestServer::start(&dir, 2, 16);
    let client = server.client("streamer");

    let request = sim_request(9, true);
    let submitted = client.submit(&request).unwrap();
    let streamed = client.stream(&submitted.id).unwrap();
    let done = client.wait(&submitted.id, WAIT).unwrap();
    assert_eq!(done.status, JobStatus::Done);
    assert!(!streamed.is_empty(), "a live traced run must stream frames");

    // Oracle: the same simulation, traced straight to a JSONL buffer.
    let graph = Family::parse("path").unwrap().generate(32, 9);
    let config = SimConfig::new(ChannelModel::Cd).with_seed(9);
    let params = CdParams::for_n(graph.len().max(2));
    let mut jsonl = JsonlTrace::new(Vec::new());
    Simulator::new(&graph, config).run_traced(|_, _| CdMis::new(params), &mut jsonl);
    let expected = jsonl.into_inner().unwrap();
    assert_eq!(
        streamed, expected,
        "stream must be byte-identical to the file sink"
    );

    // A warm re-submission is a hit — and hits have no live frames.
    let warm = client.submit(&request).unwrap();
    assert!(warm.hit);
    let replay = client.stream(&warm.id).unwrap();
    assert!(
        replay.is_empty(),
        "cache hits skip the simulator: no frames"
    );

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Backpressure: with zero queue slots every cold submission is refused
/// with 429, and the rejection is accounted in `/stats`.
#[test]
fn full_queue_rejects_with_429() {
    let dir = tmp_dir("reject");
    let server = TestServer::start(&dir, 1, 0);
    let client = server.client("rejected");

    let err = client.submit(&sim_request(3, false)).unwrap_err();
    assert!(err.starts_with("HTTP 429"), "got: {err}");
    let stats = client.stats().unwrap();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.misses, 0);

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Malformed and invalid submissions are client errors, not failures.
#[test]
fn invalid_requests_are_400s() {
    let dir = tmp_dir("bad");
    let server = TestServer::start(&dir, 1, 4);
    let client = server.client("bad");

    let bad_alg = JobRequest::Sim {
        algorithm: "quantum".to_string(),
        family: "path".to_string(),
        n: 8,
        seed: 0,
        trials: 1,
        trace: false,
        threads: 1,
    };
    let err = client.submit(&bad_alg).unwrap_err();
    assert!(err.starts_with("HTTP 400"), "got: {err}");

    let err = client.job("no-such-job").unwrap_err();
    assert!(err.starts_with("HTTP 404"), "got: {err}");

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Graceful drain: shutdown with queued work finishes every accepted
/// job, and a restarted server over the same cache directory answers all
/// of them as hits.
#[test]
fn drain_finishes_queued_jobs_and_cache_survives_restart() {
    let dir = tmp_dir("drain");
    let seeds = [21u64, 22, 23];

    let first = TestServer::start(&dir, 1, 16);
    let client = first.client("drainer");
    let mut ids = Vec::new();
    for &seed in &seeds {
        let view = client.submit(&sim_request(seed, false)).unwrap();
        ids.push(view.id);
    }
    // Shutdown immediately: all three jobs are accepted but at most one
    // has started. The drain must still finish every one of them.
    let summary = first.stop();
    assert_eq!(summary.jobs_done, seeds.len() as u64);
    assert_eq!(summary.misses, seeds.len() as u64);

    let second = TestServer::start(&dir, 1, 16);
    let client = second.client("drainer");
    for &seed in &seeds {
        let view = client.submit(&sim_request(seed, false)).unwrap();
        assert_eq!(view.status, JobStatus::Done);
        assert!(view.hit, "drained results must persist across restarts");
        assert!(view.payload.is_some());
    }
    let stats = client.stats().unwrap();
    assert_eq!((stats.hits, stats.misses), (3, 0));
    let summary = second.stop();
    assert_eq!(summary.jobs_done, 0, "warm restart never occupies a worker");

    // The aggregate manifest survives on disk for cost accounting.
    let manifest = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
    assert!(manifest.contains("\"units\""));

    let _ = std::fs::remove_dir_all(&dir);
}

/// An experiment-cell job returns the module's markdown report and is
/// content-addressed like any other job.
#[test]
fn experiment_jobs_serve_markdown_reports() {
    let dir = tmp_dir("exp");
    let server = TestServer::start(&dir, 2, 16);
    let client = server.client("exp");

    let request = JobRequest::Experiment {
        id: "e7".to_string(),
        seed: 11,
        quick: true,
    };
    let cold = client.submit_and_wait(&request, WAIT).unwrap();
    assert_eq!(cold.status, JobStatus::Done);
    assert!(!cold.hit);
    let markdown = cold.payload.as_ref().and_then(|p| p.as_str()).unwrap();
    assert!(markdown.contains('#'), "payload is the rendered report");

    let warm = client.submit(&request).unwrap();
    assert!(warm.hit);
    assert_eq!(warm.payload, cold.payload);

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}
