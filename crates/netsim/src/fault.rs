//! Composable fault injection: reception loss, crash-stop faults, jammers,
//! and staggered wake-up / dormancy windows.
//!
//! The paper's model (§1.1) is clean: lossless channel, synchronous wake-up,
//! no adversary. A [`FaultPlan`] describes how far a run departs from it:
//!
//! - **reception loss** ([`FaultPlan::with_loss`]): every (listener,
//!   transmitter) signal edge fades independently with probability `loss`
//!   *before* the channel is resolved, so every channel model — CD, no-CD,
//!   beeping, beeping + sender CD — experiences the same physical fade and
//!   feedback is re-derived from the surviving arrivals. At `loss = 1.0`
//!   every listener hears silence, whatever the model;
//! - **crash-stop faults** ([`FaultPlan::with_crash`],
//!   [`FaultPlan::with_random_crashes`]): node `v` dies at round `r` — it is
//!   retired the next time it would act, never transmits or listens again,
//!   and is excluded from MIS verification
//!   (see [`RunReport::faulty`](crate::RunReport::faulty));
//! - **jammers** ([`FaultPlan::with_jammer`],
//!   [`FaultPlan::with_random_jammers`]): adversarial nodes that transmit
//!   noise every round they are awake instead of running the protocol.
//!   Their noise collides with (and fades like) any real transmission;
//! - **staggered wake-up / dormancy** ([`WakePlan`],
//!   [`FaultPlan::with_dormancy`]): generalizing
//!   [`Simulator::with_wake_offsets`](crate::Simulator::with_wake_offsets),
//!   nodes may wake late (drawn from a window) or go radio-dormant for a
//!   contiguous window mid-run — still spending energy, but deaf and mute;
//! - **crash-recovery / churn** ([`FaultPlan::with_recovery`],
//!   [`FaultPlan::with_recover_by`], [`FaultPlan::with_churn`]): nodes go
//!   down for a *window* `[down, up)` and come back with their protocol
//!   state wiped — the engine rebuilds the node via the run's factory and
//!   calls [`Protocol::on_restart`](crate::Protocol::on_restart). Churn is
//!   a seeded per-node renewal process (geometric gaps at a per-round rate,
//!   down-times from a [`DownTime`] distribution);
//! - **mid-run joins** ([`FaultPlan::with_join`]): a node that does not
//!   exist until round `r` — it is first polled at `r` and surfaces a
//!   [`FaultKind::Join`] event, and convergence reporting counts the join
//!   as a fault to recover from;
//! - **channel jamming** ([`FaultPlan::with_channel_jam`] and the
//!   [`ChannelAdversary`] sugar): the Daum–Kuhn multichannel adversary —
//!   a *global* adversary that disrupts up to `t` of the
//!   [`SimConfig::channels`](crate::SimConfig::channels) `F` channels per
//!   round (docs/MULTICHANNEL.md). Unlike node jammers (which are wideband
//!   and local to a neighborhood), a jammed channel is dead everywhere:
//!   every listener on it hears noise, whatever its neighborhood does.
//!
//! All randomness (random crash picks, jammer picks, wake windows, dormancy
//! windows, recovery rounds, churn processes) is drawn from a dedicated
//! stream `split_seed(seed, u64::MAX - 2)` — distinct from both the
//! per-node protocol streams and the channel-fade stream — so enabling one
//! fault class never perturbs the draws of another or of the protocol
//! itself. New clauses draw strictly *after* the pre-existing ones, so a
//! plan without recovery resolves exactly as it did before recovery
//! support existed. Same seed + same plan ⇒ bit-identical run.
//!
//! The reserved stream indices (`u64::MAX - 2` here, `u64::MAX - 1` for
//! the per-(node, round) channel-fade family, `u64::MAX - 3` for the
//! per-(channel, node, round) fades of multichannel runs, `u64::MAX - 4`
//! for the roaming channel adversary's per-round picks, `0..n` for
//! protocol streams) and the older-clauses-draw-first order are part of the
//! engine's determinism contract: plan resolution happens once, at run
//! start, *before* any intra-round parallelism, so fault draws are
//! identical at every [`SimConfig::with_threads`](crate::SimConfig::with_threads)
//! count (see `docs/PARALLEL_ENGINE.md` §4).

use crate::protocol::NodeRng;
use crate::rng::split_seed;
use mis_graphs::NodeId;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Stream index (for [`split_seed`]) of the fault-resolution RNG.
/// `u64::MAX - 1` is the channel-fade stream; node streams use `0..n`.
const FAULT_STREAM_INDEX: u64 = u64::MAX - 2;

/// An explicit crash-stop fault: `node` dies at round `round`.
///
/// The crash takes effect the next time the node would act: a node asleep
/// through its crash round is retired when its wake round arrives (which is
/// observably identical — a sleeping node does nothing anyway).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Crash {
    /// The node that crashes.
    pub node: NodeId,
    /// First round at which the node is dead.
    pub round: u64,
}

/// Randomly drawn crash-stop faults: `count` distinct non-jammer nodes each
/// crash at a round drawn uniformly from `0..=by_round`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RandomCrashes {
    /// How many nodes crash (clamped to the number of eligible nodes).
    pub count: usize,
    /// Latest possible crash round (inclusive).
    pub by_round: u64,
}

/// Random dormancy windows: each node independently, with `probability`,
/// goes radio-dormant for `duration` rounds starting at a round drawn
/// uniformly from `0..=latest_start`.
///
/// A dormant node keeps running the protocol and keeps paying energy for
/// awake rounds, but its radio is dead: its transmissions never reach the
/// channel (it still believes it `Sent`) and its listens hear `Silence`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Dormancy {
    /// Per-node probability of having a dormant window.
    pub probability: f64,
    /// Latest possible window start (inclusive).
    pub latest_start: u64,
    /// Window length in rounds (must be ≥ 1).
    pub duration: u64,
}

/// An explicit crash-recovery window: `node` is down for rounds
/// `[down, up)` and restarts (with wiped protocol state) at `up`.
///
/// Like crash-stop faults, the window takes effect when the node would next
/// act; unlike them, the engine re-admits the node at `up`, rebuilding its
/// protocol instance via the run's factory and calling
/// [`Protocol::on_restart`](crate::Protocol::on_restart).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryWindow {
    /// The node that goes down.
    pub node: NodeId,
    /// First round at which the node is down.
    pub down: u64,
    /// First round at which the node is back (exclusive end of the window).
    pub up: u64,
}

/// Down-time distribution for churned nodes ([`FaultPlan::with_churn`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DownTime {
    /// Every outage lasts exactly this many rounds.
    Fixed(u64),
    /// Outage lengths drawn uniformly from `lo..=hi`.
    Uniform {
        /// Shortest possible outage (≥ 1).
        lo: u64,
        /// Longest possible outage (inclusive).
        hi: u64,
    },
}

impl DownTime {
    fn sample(&self, rng: &mut NodeRng) -> u64 {
        match *self {
            DownTime::Fixed(d) => d.max(1),
            DownTime::Uniform { lo, hi } => rng.gen_range(lo.max(1)..=hi.max(lo.max(1))),
        }
    }
}

/// A seeded churn process: every non-jammer node independently goes down
/// at per-round rate `rate` (geometric gaps between outages) until round
/// `until`, with down-times drawn from `downtime`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Churn {
    /// Per-round probability that an up node goes down.
    pub rate: f64,
    /// No new outage starts at or after this round.
    pub until: u64,
    /// Down-time distribution.
    pub downtime: DownTime,
}

/// A mid-run join: `node` does not exist until `round` — it is first polled
/// then, whatever its wake offset says.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Join {
    /// The joining node.
    pub node: NodeId,
    /// First round at which the node exists (≥ 1).
    pub round: u64,
}

/// How a global channel adversary picks the channels it disrupts each
/// round (docs/MULTICHANNEL.md). All variants respect a per-round budget
/// `t`; solvability requires `t <` the configured channel count `F`, which
/// the engine enforces by capping the jam set at `F - 1` channels.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChannelAdversary {
    /// Jams the same channels every round of the clause's window.
    Fixed(Vec<u16>),
    /// Jams `t` distinct channels redrawn every round from the dedicated
    /// roaming stream `split_seed(seed, u64::MAX - 4)`, sub-keyed per
    /// (clause index, round) — an *oblivious* adversary.
    Roaming(u16),
    /// Jams the `t` channels that carried the most transmissions in the
    /// previous processed round (ties broken toward lower channel ids;
    /// round 0 jams the lowest ids) — the strongest adversary the
    /// Daum–Kuhn model allows short of full adaptivity, since it reacts
    /// to observable traffic with one round of lag.
    Adaptive(u16),
}

impl ChannelAdversary {
    /// The per-round jamming budget: how many channels this adversary can
    /// disrupt at once.
    pub fn budget(&self) -> u16 {
        match self {
            ChannelAdversary::Fixed(chs) => chs.len().min(u16::MAX as usize) as u16,
            ChannelAdversary::Roaming(t) | ChannelAdversary::Adaptive(t) => *t,
        }
    }
}

/// A global channel-jamming clause: `adversary` disrupts channels on every
/// round in `[from, until)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelJam {
    /// Which channels get jammed each round.
    pub adversary: ChannelAdversary,
    /// First jammed round.
    pub from: u64,
    /// Exclusive end of the window (`u64::MAX` = jams forever).
    pub until: u64,
}

/// When nodes first wake up. Generalizes
/// [`Simulator::with_wake_offsets`](crate::Simulator::with_wake_offsets)
/// (which, when set, takes precedence over the plan's `WakePlan`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum WakePlan {
    /// The paper's model: every node wakes at round 0.
    #[default]
    Synchronous,
    /// Node `v` wakes at `offsets[v]` (length must equal the node count).
    Explicit(Vec<u64>),
    /// Each node's wake round is drawn uniformly from `0..window`
    /// (a window of 0 means synchronous).
    RandomWindow(u64),
}

/// The kind of a fault occurrence, carried by
/// [`TraceEvent::Fault`](crate::TraceEvent::Fault).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// The node crashed (crash-stop); `round` is its first dead round.
    Crash,
    /// The node is a jammer. Emitted once at run start with `round` 0; the
    /// jammer transmits noise from its wake round until it crashes (if
    /// ever).
    Jam,
    /// The node entered its dormancy window. Emitted at the first round the
    /// node *acts* while dormant (a node that sleeps through its whole
    /// window never surfaces it).
    Dormant,
    /// The node came back up after a down window: its protocol state was
    /// wiped, the engine rebuilt it via the run's factory and called
    /// [`Protocol::on_restart`](crate::Protocol::on_restart). `round` is
    /// the restart round; the node acts again from `round + 1`.
    Recover,
    /// The node joined the network mid-run; `round` is its first round of
    /// existence.
    Join,
}

/// A composable description of every fault a run injects. The default plan
/// ([`FaultPlan::none`]) is inert and costs the engine nothing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Per-(listener, transmitter) signal-fade probability, applied to every
    /// arriving signal (real or jammer noise) before channel resolution.
    pub loss: f64,
    /// Explicit crash-stop faults.
    pub crashes: Vec<Crash>,
    /// Randomly drawn crash-stop faults (on top of any explicit ones).
    pub random_crashes: Option<RandomCrashes>,
    /// Explicit jammer nodes.
    pub jammers: Vec<NodeId>,
    /// Number of additional jammers drawn uniformly at random.
    pub random_jammers: usize,
    /// When nodes wake up.
    pub wake: WakePlan,
    /// Random dormancy windows.
    pub dormancy: Option<Dormancy>,
    /// Explicit crash-recovery windows.
    #[serde(default)]
    pub recoveries: Vec<RecoveryWindow>,
    /// Makes every crash clause recoverable: each crashed node restarts at
    /// a round drawn uniformly from `(crash, recover_by]`. A modifier of
    /// the crash clauses — it injects nothing on its own.
    #[serde(default)]
    pub recover_by: Option<u64>,
    /// Seeded churn process (down/up cycles with random down-times).
    #[serde(default)]
    pub churn: Option<Churn>,
    /// Mid-run joins.
    #[serde(default)]
    pub joins: Vec<Join>,
    /// Global channel-jamming clauses. The engine caps the per-round jam
    /// set at `F - 1` channels (the Daum–Kuhn solvability condition
    /// `t < F`), which makes these clauses inert at `F = 1`.
    #[serde(default)]
    pub channel_jams: Vec<ChannelJam>,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The inert plan: no loss, no crashes, no jammers, synchronous wake-up.
    pub fn none() -> FaultPlan {
        FaultPlan {
            loss: 0.0,
            crashes: Vec::new(),
            random_crashes: None,
            jammers: Vec::new(),
            random_jammers: 0,
            wake: WakePlan::Synchronous,
            dormancy: None,
            recoveries: Vec::new(),
            recover_by: None,
            churn: None,
            joins: Vec::new(),
            channel_jams: Vec::new(),
        }
    }

    /// Whether this plan injects nothing (the engine then takes its
    /// fault-free fast paths everywhere).
    pub fn is_inert(&self) -> bool {
        self.loss == 0.0
            && self.crashes.is_empty()
            && self.random_crashes.is_none()
            && self.jammers.is_empty()
            && self.random_jammers == 0
            && self.wake == WakePlan::Synchronous
            && self.dormancy.is_none()
            && self.recoveries.is_empty()
            && self.churn.is_none()
            && self.joins.is_empty()
            && self.channel_jams.is_empty()
        // `recover_by` alone modifies crash clauses; with none configured it
        // injects nothing and keeps the plan inert.
    }

    /// Sets the per-edge reception-loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn with_loss(mut self, p: f64) -> FaultPlan {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability {p} outside [0, 1]"
        );
        self.loss = p;
        self
    }

    /// Adds an explicit crash-stop fault: `node` dies at round `round`.
    pub fn with_crash(mut self, node: NodeId, round: u64) -> FaultPlan {
        self.crashes.push(Crash { node, round });
        self
    }

    /// Draws `count` random crash-stop faults, each at a round uniform in
    /// `0..=by_round` (from the dedicated fault stream).
    pub fn with_random_crashes(mut self, count: usize, by_round: u64) -> FaultPlan {
        self.random_crashes = Some(RandomCrashes { count, by_round });
        self
    }

    /// Makes `node` a jammer: it never runs the protocol and transmits
    /// noise every round from its wake round until it crashes (if ever).
    pub fn with_jammer(mut self, node: NodeId) -> FaultPlan {
        self.jammers.push(node);
        self
    }

    /// Draws `count` additional random jammers (from the fault stream).
    pub fn with_random_jammers(mut self, count: usize) -> FaultPlan {
        self.random_jammers = count;
        self
    }

    /// Sets the wake-up plan.
    pub fn with_wake(mut self, wake: WakePlan) -> FaultPlan {
        self.wake = wake;
        self
    }

    /// Staggered wake-up sugar: each node's wake round is drawn uniformly
    /// from `0..window`.
    pub fn with_wake_window(mut self, window: u64) -> FaultPlan {
        self.wake = WakePlan::RandomWindow(window);
        self
    }

    /// Gives each node, with `probability`, a radio-dormant window of
    /// `duration` rounds starting uniformly in `0..=latest_start`.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is outside `[0, 1]` or `duration` is 0.
    pub fn with_dormancy(
        mut self,
        probability: f64,
        latest_start: u64,
        duration: u64,
    ) -> FaultPlan {
        assert!(
            (0.0..=1.0).contains(&probability),
            "dormancy probability {probability} outside [0, 1]"
        );
        assert!(duration > 0, "dormancy duration must be >= 1 round");
        self.dormancy = Some(Dormancy {
            probability,
            latest_start,
            duration,
        });
        self
    }

    /// Adds an explicit crash-recovery window: `node` is down for rounds
    /// `[down, up)` and restarts (state wiped) at `up`.
    ///
    /// # Panics
    ///
    /// Panics if `down >= up`.
    pub fn with_recovery(mut self, node: NodeId, down: u64, up: u64) -> FaultPlan {
        assert!(down < up, "recovery window [{down}, {up}) is empty");
        self.recoveries.push(RecoveryWindow { node, down, up });
        self
    }

    /// Makes every crash clause recoverable: each crashed node restarts at
    /// a round drawn uniformly from `(crash, recover_by]` (or `crash + 1`
    /// if `recover_by` is not past the crash).
    pub fn with_recover_by(mut self, recover_by: u64) -> FaultPlan {
        self.recover_by = Some(recover_by);
        self
    }

    /// Installs a seeded churn process: every non-jammer node independently
    /// goes down at per-round `rate` until round `until`, staying down for
    /// a duration drawn from `downtime`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn with_churn(mut self, rate: f64, until: u64, downtime: DownTime) -> FaultPlan {
        assert!(
            (0.0..=1.0).contains(&rate),
            "churn rate {rate} outside [0, 1]"
        );
        self.churn = Some(Churn {
            rate,
            until,
            downtime,
        });
        self
    }

    /// Adds a mid-run join: `node` does not exist until `round`.
    ///
    /// # Panics
    ///
    /// Panics if `round` is 0 (that is the paper's synchronous start, not a
    /// join).
    pub fn with_join(mut self, node: NodeId, round: u64) -> FaultPlan {
        assert!(round > 0, "a join at round 0 is not a join");
        self.joins.push(Join { node, round });
        self
    }

    /// Adds a global channel-jamming clause: `adversary` disrupts channels
    /// on every round in `[from, until)` (see [`ChannelAdversary`] for the
    /// selection rules and docs/MULTICHANNEL.md for the model).
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or the adversary's budget is 0.
    pub fn with_channel_jam(
        mut self,
        adversary: ChannelAdversary,
        from: u64,
        until: u64,
    ) -> FaultPlan {
        assert!(
            from < until,
            "channel-jam window [{from}, {until}) is empty"
        );
        assert!(adversary.budget() > 0, "channel adversary with budget 0");
        self.channel_jams.push(ChannelJam {
            adversary,
            from,
            until,
        });
        self
    }

    /// Jams the given channels on every round of the run.
    pub fn with_fixed_channel_jam(self, channels: Vec<u16>) -> FaultPlan {
        self.with_channel_jam(ChannelAdversary::Fixed(channels), 0, u64::MAX)
    }

    /// Jams `t` seeded-random channels, redrawn every round of the run.
    pub fn with_roaming_channel_jam(self, t: u16) -> FaultPlan {
        self.with_channel_jam(ChannelAdversary::Roaming(t), 0, u64::MAX)
    }

    /// Jams the `t` busiest channels of the previous round, every round of
    /// the run.
    pub fn with_adaptive_channel_jam(self, t: u16) -> FaultPlan {
        self.with_channel_jam(ChannelAdversary::Adaptive(t), 0, u64::MAX)
    }

    /// The largest per-round channel-jamming budget across all clauses
    /// (0 when the plan has none). Protocols use this to size their
    /// resilience parameter `t`.
    pub fn max_jammed_channels(&self) -> u16 {
        self.channel_jams
            .iter()
            .map(|c| c.adversary.budget())
            .max()
            .unwrap_or(0)
    }

    /// Resolves the plan against a concrete node count and master seed:
    /// draws every random choice (jammer picks, crash picks and rounds,
    /// wake offsets, dormancy windows) from the dedicated fault stream.
    ///
    /// Deterministic: same `(plan, n, seed)` ⇒ same resolution. The draw
    /// order is fixed (wake, jammers, crashes, dormancy) so that e.g.
    /// adding a dormancy clause never re-rolls the jammer picks... within
    /// one plan; across plans the stream is shared.
    ///
    /// # Panics
    ///
    /// Panics if an explicit crash/jammer node is out of range, or an
    /// explicit wake-offset vector has the wrong length.
    pub(crate) fn resolve(&self, n: usize, master_seed: u64) -> ResolvedFaults {
        if self.is_inert() || n == 0 {
            return ResolvedFaults::inert();
        }
        let mut rng = NodeRng::seed_from_u64(split_seed(master_seed, FAULT_STREAM_INDEX));

        // 1. Wake offsets.
        let wake_offsets = match &self.wake {
            WakePlan::Synchronous => None,
            WakePlan::Explicit(offsets) => {
                assert_eq!(offsets.len(), n, "explicit wake-offset length mismatch");
                Some(offsets.clone())
            }
            WakePlan::RandomWindow(0) => None,
            WakePlan::RandomWindow(w) => Some((0..n).map(|_| rng.gen_range(0..*w)).collect()),
        };

        // 2. Jammers: explicit first, then distinct random picks.
        let any_jammers = !self.jammers.is_empty() || self.random_jammers > 0;
        let mut jammer = if any_jammers {
            vec![false; n]
        } else {
            Vec::new()
        };
        for &j in &self.jammers {
            assert!(j < n, "jammer node {j} out of range (n = {n})");
            jammer[j] = true;
        }
        if self.random_jammers > 0 {
            let placed = jammer.iter().filter(|&&b| b).count();
            let mut remaining = self.random_jammers.min(n - placed);
            while remaining > 0 {
                let v = rng.gen_range(0..n);
                if !jammer[v] {
                    jammer[v] = true;
                    remaining -= 1;
                }
            }
        }
        let jammer_list: Vec<NodeId> = jammer
            .iter()
            .enumerate()
            .filter_map(|(v, &b)| b.then_some(v))
            .collect();

        // 3. Crashes: explicit (earliest round wins), then distinct random
        // picks among non-jammer, not-yet-crashing nodes.
        let any_crashes = !self.crashes.is_empty() || self.random_crashes.is_some();
        let mut crash_round = if any_crashes {
            vec![u64::MAX; n]
        } else {
            Vec::new()
        };
        for c in &self.crashes {
            assert!(c.node < n, "crash node {} out of range (n = {n})", c.node);
            crash_round[c.node] = crash_round[c.node].min(c.round);
        }
        if let Some(rc) = self.random_crashes {
            let eligible = (0..n)
                .filter(|&v| crash_round[v] == u64::MAX && !jammer.get(v).copied().unwrap_or(false))
                .count();
            let mut remaining = rc.count.min(eligible);
            while remaining > 0 {
                let v = rng.gen_range(0..n);
                if crash_round[v] == u64::MAX && !jammer.get(v).copied().unwrap_or(false) {
                    crash_round[v] = rng.gen_range(0..=rc.by_round);
                    remaining -= 1;
                }
            }
        }

        // 4. Dormancy windows.
        let (dormant_from, dormant_len) = match self.dormancy {
            None => (Vec::new(), 0),
            Some(d) => {
                let from: Vec<u64> = (0..n)
                    .map(|_| {
                        if rng.gen_bool(d.probability) {
                            rng.gen_range(0..=d.latest_start)
                        } else {
                            u64::MAX
                        }
                    })
                    .collect();
                (from, d.duration)
            }
        };

        // 5..7. Recovery clauses. These draw strictly *after* every
        // pre-existing clause, so plans without recovery resolve exactly as
        // they did before recovery support existed.
        let any_recovery =
            !self.recoveries.is_empty() || self.recover_by.is_some() || self.churn.is_some();
        let mut down_windows: Vec<Vec<(u64, u64)>> = if any_recovery {
            vec![Vec::new(); n]
        } else {
            Vec::new()
        };

        // 5. `recover_by`: convert every crash into a down window ending at
        // a uniform round in `(crash, recover_by]`. Jammers keep their
        // crash round — it is the end of their jamming, not a protocol
        // fault to recover from.
        if let Some(by) = self.recover_by {
            for v in 0..n {
                let crash = crash_round.get(v).copied().unwrap_or(u64::MAX);
                if crash == u64::MAX || jammer.get(v).copied().unwrap_or(false) {
                    continue;
                }
                let up = if by > crash {
                    rng.gen_range(crash + 1..=by)
                } else {
                    crash + 1
                };
                down_windows[v].push((crash, up));
                crash_round[v] = u64::MAX;
            }
            if crash_round.iter().all(|&c| c == u64::MAX) {
                crash_round = Vec::new();
            }
        }

        // 6. Explicit recovery windows.
        for w in &self.recoveries {
            assert!(
                w.node < n,
                "recovery node {} out of range (n = {n})",
                w.node
            );
            down_windows[w.node].push((w.down, w.up));
        }

        // 7. Churn: per node, a renewal process of geometric up-gaps at
        // `rate` and sampled down-times, until round `until`.
        if let Some(c) = self.churn {
            if c.rate > 0.0 {
                for (v, wins) in down_windows.iter_mut().enumerate() {
                    if jammer.get(v).copied().unwrap_or(false) {
                        continue;
                    }
                    let mut t = 0u64;
                    while t < c.until {
                        let gap = if c.rate >= 1.0 {
                            0
                        } else {
                            // Geometric gap via inverse transform; capped so
                            // a tiny draw cannot overflow the round space.
                            let u: f64 = rng.gen();
                            let g = (1.0 - u).ln() / (1.0 - c.rate).ln();
                            if g >= c.until as f64 {
                                break;
                            }
                            g as u64
                        };
                        let down = t + gap;
                        if down >= c.until {
                            break;
                        }
                        let up = down + c.downtime.sample(&mut rng);
                        wins.push((down, up));
                        t = up;
                    }
                }
            }
        }

        if any_recovery {
            // Sort and coalesce each node's windows into disjoint,
            // ascending intervals (explicit windows may overlap churn).
            for wins in &mut down_windows {
                wins.sort_unstable();
                let mut merged: Vec<(u64, u64)> = Vec::with_capacity(wins.len());
                for &(d, u) in wins.iter() {
                    match merged.last_mut() {
                        Some(last) if d <= last.1 => last.1 = last.1.max(u),
                        _ => merged.push((d, u)),
                    }
                }
                *wins = merged;
            }
            if down_windows.iter().all(|w| w.is_empty()) {
                down_windows = Vec::new();
            }
        }

        // 8. Joins: explicit, latest round wins per node.
        let join_round = if self.joins.is_empty() {
            Vec::new()
        } else {
            let mut jr = vec![0u64; n];
            for j in &self.joins {
                assert!(j.node < n, "join node {} out of range (n = {n})", j.node);
                jr[j.node] = jr[j.node].max(j.round);
            }
            jr
        };

        // Last fault round: the latest round at which any injected fault
        // can still perturb the run. Continuous clauses (loss, jammers,
        // unbounded channel jams) never end. Channel-jam clauses draw
        // NOTHING here: their per-round picks come from dedicated streams
        // at simulation time, so adding one never perturbs the draws above.
        let endless_channel_jam = self.channel_jams.iter().any(|c| c.until == u64::MAX);
        let last_fault_round = if self.loss > 0.0 || !jammer_list.is_empty() || endless_channel_jam
        {
            u64::MAX
        } else {
            let mut last = 0u64;
            for &c in &crash_round {
                if c != u64::MAX {
                    last = last.max(c);
                }
            }
            for wins in &down_windows {
                if let Some(&(_, up)) = wins.last() {
                    last = last.max(up);
                }
            }
            for &j in &join_round {
                last = last.max(j);
            }
            for &from in &dormant_from {
                if from != u64::MAX {
                    last = last.max(from + dormant_len);
                }
            }
            if let Some(offsets) = &wake_offsets {
                for &o in offsets {
                    last = last.max(o);
                }
            }
            for c in &self.channel_jams {
                last = last.max(c.until.saturating_sub(1));
            }
            last
        };

        ResolvedFaults {
            wake_offsets,
            crash_round,
            jammer,
            jammer_list,
            dormant_from,
            dormant_len,
            down_windows,
            join_round,
            channel_jams: self.channel_jams.clone(),
            last_fault_round,
        }
    }
}

/// A [`FaultPlan`] with every random choice drawn: the concrete per-node
/// fault schedule the engine executes.
///
/// Empty vectors mean "this fault class is absent" — the engine checks the
/// class flags once per run and skips absent classes entirely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ResolvedFaults {
    /// Per-node wake rounds from the plan's [`WakePlan`] (`None` =
    /// synchronous). Overridden by `Simulator::with_wake_offsets`.
    pub wake_offsets: Option<Vec<u64>>,
    /// Per-node first dead round (`u64::MAX` = never crashes). Empty when
    /// the plan has no crash faults.
    pub crash_round: Vec<u64>,
    /// Per-node jammer flag. Empty when the plan has no jammers.
    pub jammer: Vec<bool>,
    /// The jammer nodes, ascending.
    pub jammer_list: Vec<NodeId>,
    /// Per-node dormancy-window start (`u64::MAX` = none). Empty when the
    /// plan has no dormancy clause.
    pub dormant_from: Vec<u64>,
    /// Dormancy-window length in rounds.
    pub dormant_len: u64,
    /// Per-node sorted, disjoint down windows `(down, up)`. Empty when the
    /// plan has no recovery clauses.
    pub down_windows: Vec<Vec<(u64, u64)>>,
    /// Per-node join round (0 = present from the start). Empty when the
    /// plan has no joins.
    pub join_round: Vec<u64>,
    /// The plan's channel-jamming clauses, verbatim (their per-round picks
    /// are resolved at simulation time, not here). Empty when absent.
    pub channel_jams: Vec<ChannelJam>,
    /// Latest round at which any injected fault can still perturb the run
    /// (`u64::MAX` for never-ending clauses: loss, jammers). Convergence
    /// reporting only trusts correctness observed *after* this round.
    pub last_fault_round: u64,
}

impl ResolvedFaults {
    /// The resolution of an inert plan.
    pub fn inert() -> ResolvedFaults {
        ResolvedFaults {
            wake_offsets: None,
            crash_round: Vec::new(),
            jammer: Vec::new(),
            jammer_list: Vec::new(),
            dormant_from: Vec::new(),
            dormant_len: 0,
            down_windows: Vec::new(),
            join_round: Vec::new(),
            channel_jams: Vec::new(),
            last_fault_round: 0,
        }
    }

    /// Whether any channel-jamming clause exists.
    pub fn has_channel_jams(&self) -> bool {
        !self.channel_jams.is_empty()
    }

    /// Whether any node ever crashes (permanently).
    pub fn has_crashes(&self) -> bool {
        !self.crash_round.is_empty()
    }

    /// Whether any node has a crash-recovery (down/up) window.
    pub fn has_recovery(&self) -> bool {
        !self.down_windows.is_empty()
    }

    /// Whether any node joins mid-run.
    pub fn has_joins(&self) -> bool {
        !self.join_round.is_empty()
    }

    /// Node `v`'s down windows (empty slice when it has none).
    pub fn windows_of(&self, v: NodeId) -> &[(u64, u64)] {
        self.down_windows.get(v).map_or(&[], |w| w.as_slice())
    }

    /// Node `v`'s join round (0 = present from the start).
    pub fn join_of(&self, v: NodeId) -> u64 {
        self.join_round.get(v).copied().unwrap_or(0)
    }

    /// Whether any node has a dormancy window.
    pub fn has_dormancy(&self) -> bool {
        !self.dormant_from.is_empty()
    }

    /// First dead round of `v` (`u64::MAX` if it never crashes).
    pub fn crash_of(&self, v: NodeId) -> u64 {
        self.crash_round.get(v).copied().unwrap_or(u64::MAX)
    }

    /// Whether `v`'s radio is dormant at `round`.
    pub fn is_dormant(&self, v: NodeId, round: u64) -> bool {
        match self.dormant_from.get(v) {
            Some(&from) => round >= from && round - from < self.dormant_len,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let plan = FaultPlan::none();
        assert!(plan.is_inert());
        assert_eq!(plan, FaultPlan::default());
        let r = plan.resolve(16, 7);
        assert_eq!(r, ResolvedFaults::inert());
        assert!(!r.has_crashes());
        assert!(!r.has_dormancy());
        assert_eq!(r.crash_of(3), u64::MAX);
        assert!(!r.is_dormant(3, 0));
    }

    #[test]
    fn every_clause_deactivates_inertness() {
        assert!(!FaultPlan::none().with_loss(0.5).is_inert());
        assert!(!FaultPlan::none().with_crash(0, 1).is_inert());
        assert!(!FaultPlan::none().with_random_crashes(1, 10).is_inert());
        assert!(!FaultPlan::none().with_jammer(0).is_inert());
        assert!(!FaultPlan::none().with_random_jammers(1).is_inert());
        assert!(!FaultPlan::none().with_wake_window(4).is_inert());
        assert!(!FaultPlan::none().with_dormancy(0.5, 10, 3).is_inert());
        // Degenerate-but-explicit clauses still count as faults configured,
        // except loss 0.0 and a synchronous wake plan.
        assert!(FaultPlan::none().with_loss(0.0).is_inert());
        assert!(FaultPlan::none()
            .with_wake(WakePlan::Synchronous)
            .is_inert());
    }

    #[test]
    fn explicit_crashes_and_jammers_resolve_verbatim() {
        let plan = FaultPlan::none()
            .with_crash(3, 10)
            .with_crash(3, 4) // earliest wins
            .with_crash(5, 0)
            .with_jammer(1)
            .with_jammer(1); // idempotent
        let r = plan.resolve(8, 99);
        assert_eq!(r.crash_of(3), 4);
        assert_eq!(r.crash_of(5), 0);
        assert_eq!(r.crash_of(0), u64::MAX);
        assert_eq!(r.jammer_list, vec![1]);
        assert!(r.jammer[1]);
        assert!(!r.jammer[2]);
    }

    #[test]
    fn random_draws_are_seed_deterministic_and_in_range() {
        let plan = FaultPlan::none()
            .with_random_crashes(3, 20)
            .with_random_jammers(2)
            .with_wake_window(16)
            .with_dormancy(0.5, 30, 5);
        let a = plan.resolve(32, 42);
        let b = plan.resolve(32, 42);
        let c = plan.resolve(32, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);

        assert_eq!(a.jammer_list.len(), 2);
        let crashed: Vec<usize> = (0..32).filter(|&v| a.crash_of(v) != u64::MAX).collect();
        assert_eq!(crashed.len(), 3);
        for &v in &crashed {
            assert!(a.crash_of(v) <= 20);
            assert!(!a.jammer[v], "random crashes never hit jammers");
        }
        for off in a.wake_offsets.as_ref().unwrap() {
            assert!(*off < 16);
        }
        for &from in &a.dormant_from {
            assert!(from == u64::MAX || from <= 30);
        }
        assert_eq!(a.dormant_len, 5);
    }

    #[test]
    fn random_counts_clamp_to_population() {
        let plan = FaultPlan::none()
            .with_random_jammers(100)
            .with_random_crashes(100, 5);
        let r = plan.resolve(4, 1);
        assert_eq!(r.jammer_list.len(), 4);
        // All nodes are jammers, so no node is eligible to crash.
        assert!((0..4).all(|v| r.crash_of(v) == u64::MAX));
    }

    #[test]
    fn dormancy_window_arithmetic() {
        let r = ResolvedFaults {
            dormant_from: vec![5, u64::MAX],
            dormant_len: 3,
            ..ResolvedFaults::inert()
        };
        assert!(!r.is_dormant(0, 4));
        assert!(r.is_dormant(0, 5));
        assert!(r.is_dormant(0, 7));
        assert!(!r.is_dormant(0, 8));
        assert!(!r.is_dormant(1, 5));
        // Out-of-range node defaults to not dormant.
        assert!(!r.is_dormant(9, 5));
    }

    #[test]
    fn wake_window_of_zero_is_synchronous() {
        let r = FaultPlan::none()
            .with_wake_window(0)
            .with_loss(0.1) // keep the plan non-inert
            .resolve(4, 0);
        assert!(r.wake_offsets.is_none());
    }

    #[test]
    fn explicit_wake_offsets_pass_through() {
        let plan = FaultPlan::none().with_wake(WakePlan::Explicit(vec![0, 3, 9]));
        let r = plan.resolve(3, 0);
        assert_eq!(r.wake_offsets, Some(vec![0, 3, 9]));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn explicit_wake_offsets_length_checked() {
        let _ = FaultPlan::none()
            .with_wake(WakePlan::Explicit(vec![0, 3]))
            .resolve(3, 0);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn loss_validated() {
        let _ = FaultPlan::none().with_loss(-0.1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn crash_node_validated() {
        let _ = FaultPlan::none().with_crash(9, 0).resolve(4, 0);
    }

    #[test]
    #[should_panic(expected = "duration")]
    fn dormancy_duration_validated() {
        let _ = FaultPlan::none().with_dormancy(0.5, 10, 0);
    }

    #[test]
    fn serde_roundtrip() {
        let plan = FaultPlan::none()
            .with_loss(0.25)
            .with_crash(1, 7)
            .with_jammer(0)
            .with_wake_window(8)
            .with_dormancy(0.1, 20, 4)
            .with_recovery(2, 3, 9)
            .with_churn(0.01, 50, DownTime::Uniform { lo: 2, hi: 6 })
            .with_join(3, 12);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn pr2_plans_deserialize_without_recovery_fields() {
        // Plans serialized before recovery support lack the new fields;
        // serde must default them to the inert values.
        let json = r#"{"loss":0.5,"crashes":[],"random_crashes":null,
            "jammers":[],"random_jammers":0,"wake":"Synchronous",
            "dormancy":null}"#;
        let plan: FaultPlan = serde_json::from_str(json).unwrap();
        assert!(plan.recoveries.is_empty());
        assert!(plan.recover_by.is_none());
        assert!(plan.churn.is_none());
        assert!(plan.joins.is_empty());
    }

    #[test]
    fn recovery_clauses_deactivate_inertness() {
        assert!(!FaultPlan::none().with_recovery(0, 1, 5).is_inert());
        assert!(!FaultPlan::none()
            .with_churn(0.1, 10, DownTime::Fixed(2))
            .is_inert());
        assert!(!FaultPlan::none().with_join(0, 3).is_inert());
        // `recover_by` is a modifier of crash clauses: alone it injects
        // nothing and keeps the plan inert.
        assert!(FaultPlan::none().with_recover_by(10).is_inert());
    }

    #[test]
    fn explicit_recovery_windows_resolve_sorted_and_merged() {
        let plan = FaultPlan::none()
            .with_recovery(1, 10, 14)
            .with_recovery(1, 2, 5)
            .with_recovery(1, 4, 8); // overlaps [2, 5) — merged
        let r = plan.resolve(3, 7);
        assert!(r.has_recovery());
        assert_eq!(r.windows_of(1), &[(2, 8), (10, 14)]);
        assert_eq!(r.windows_of(0), &[] as &[(u64, u64)]);
        assert_eq!(r.windows_of(9), &[] as &[(u64, u64)]);
        assert_eq!(r.last_fault_round, 14);
    }

    #[test]
    fn recover_by_converts_crashes_into_windows() {
        let plan = FaultPlan::none()
            .with_crash(0, 5)
            .with_crash(2, 20)
            .with_recover_by(12);
        let r = plan.resolve(3, 3);
        // All crashes became recoverable: no permanent crash remains.
        assert!(!r.has_crashes());
        let w0 = r.windows_of(0);
        assert_eq!(w0.len(), 1);
        assert_eq!(w0[0].0, 5);
        assert!(
            w0[0].1 > 5 && w0[0].1 <= 12,
            "up {} not in (5, 12]",
            w0[0].1
        );
        // Crash at 20 is past recover_by: the node restarts right after.
        assert_eq!(r.windows_of(2), &[(20, 21)]);
    }

    #[test]
    fn recover_by_leaves_jammer_crashes_permanent() {
        // A jammer's crash round is the end of its jamming, not a fault to
        // recover from.
        let plan = FaultPlan::none()
            .with_jammer(1)
            .with_crash(1, 4)
            .with_crash(0, 2)
            .with_recover_by(10);
        let r = plan.resolve(2, 0);
        assert_eq!(r.crash_of(1), 4);
        assert_eq!(r.windows_of(1), &[] as &[(u64, u64)]);
        assert_eq!(r.windows_of(0).len(), 1);
    }

    #[test]
    fn churn_is_seed_deterministic_with_disjoint_windows() {
        let plan = FaultPlan::none().with_churn(0.02, 200, DownTime::Uniform { lo: 3, hi: 9 });
        let a = plan.resolve(16, 11);
        let b = plan.resolve(16, 11);
        let c = plan.resolve(16, 12);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut any = false;
        for v in 0..16 {
            let wins = a.windows_of(v);
            any |= !wins.is_empty();
            for w in wins.windows(2) {
                assert!(w[0].1 <= w[1].0, "overlapping windows {w:?}");
            }
            for &(d, u) in wins {
                assert!(d < 200, "churn outage starts after `until`");
                assert!(u > d && u - d >= 3 && u - d <= 9, "down-time {:?}", (d, u));
            }
        }
        assert!(any, "rate 0.02 over 200 rounds × 16 nodes drew no outage");
    }

    #[test]
    fn churn_skips_jammers_and_zero_rate_is_empty() {
        let plan = FaultPlan::none()
            .with_jammer(0)
            .with_churn(1.0, 5, DownTime::Fixed(1));
        let r = plan.resolve(2, 9);
        assert_eq!(r.windows_of(0), &[] as &[(u64, u64)]);
        assert!(!r.windows_of(1).is_empty());

        let r = FaultPlan::none()
            .with_loss(0.1) // keep non-inert
            .with_churn(0.0, 100, DownTime::Fixed(1))
            .resolve(4, 9);
        assert!(!r.has_recovery());
    }

    #[test]
    fn joins_resolve_with_latest_round_winning() {
        let plan = FaultPlan::none().with_join(1, 5).with_join(1, 9);
        let r = plan.resolve(3, 0);
        assert!(r.has_joins());
        assert_eq!(r.join_of(1), 9);
        assert_eq!(r.join_of(0), 0);
        assert_eq!(r.join_of(7), 0);
        assert_eq!(r.last_fault_round, 9);
    }

    #[test]
    fn last_fault_round_is_infinite_for_continuous_clauses() {
        assert_eq!(
            FaultPlan::none()
                .with_loss(0.1)
                .resolve(4, 0)
                .last_fault_round,
            u64::MAX
        );
        assert_eq!(
            FaultPlan::none()
                .with_jammer(0)
                .resolve(4, 0)
                .last_fault_round,
            u64::MAX
        );
        // Terminal clauses end: crash at 7, dormancy through 10 + 4.
        let r = FaultPlan::none()
            .with_crash(0, 7)
            .with_dormancy(1.0, 10, 4)
            .resolve(4, 5);
        assert!(r.last_fault_round >= 7 && r.last_fault_round <= 14);
    }

    #[test]
    fn adding_recovery_does_not_perturb_prior_draws() {
        // Recovery draws come strictly after the pre-existing clauses on
        // the shared fault stream: the wake/jammer/crash/dormancy outcome
        // of a plan must be bit-identical with and without a churn clause.
        let base = FaultPlan::none()
            .with_random_crashes(3, 20)
            .with_random_jammers(2)
            .with_wake_window(16)
            .with_dormancy(0.5, 30, 5);
        let with = base
            .clone()
            .with_churn(0.05, 40, DownTime::Fixed(3))
            .resolve(32, 42);
        let without = base.resolve(32, 42);
        assert_eq!(with.wake_offsets, without.wake_offsets);
        assert_eq!(with.jammer_list, without.jammer_list);
        assert_eq!(with.crash_round, without.crash_round);
        assert_eq!(with.dormant_from, without.dormant_from);
    }

    #[test]
    #[should_panic(expected = "is empty")]
    fn recovery_window_validated() {
        let _ = FaultPlan::none().with_recovery(0, 5, 5);
    }

    #[test]
    #[should_panic(expected = "not a join")]
    fn join_round_validated() {
        let _ = FaultPlan::none().with_join(0, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn recovery_node_validated() {
        let _ = FaultPlan::none().with_recovery(9, 0, 4).resolve(4, 0);
    }

    #[test]
    fn channel_jams_deactivate_inertness_and_report_budget() {
        let plan = FaultPlan::none().with_fixed_channel_jam(vec![0, 2]);
        assert!(!plan.is_inert());
        assert_eq!(plan.max_jammed_channels(), 2);
        assert_eq!(FaultPlan::none().max_jammed_channels(), 0);
        assert_eq!(
            FaultPlan::none()
                .with_roaming_channel_jam(1)
                .with_adaptive_channel_jam(3)
                .max_jammed_channels(),
            3
        );
    }

    #[test]
    fn channel_jams_serde_roundtrip_and_pre_pr8_compat() {
        let plan = FaultPlan::none()
            .with_channel_jam(ChannelAdversary::Roaming(2), 5, 50)
            .with_adaptive_channel_jam(1);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
        // Plans serialized before multichannel support lack the field.
        let json = r#"{"loss":0.5,"crashes":[],"random_crashes":null,
            "jammers":[],"random_jammers":0,"wake":"Synchronous",
            "dormancy":null}"#;
        let plan: FaultPlan = serde_json::from_str(json).unwrap();
        assert!(plan.channel_jams.is_empty());
    }

    #[test]
    fn channel_jams_draw_nothing_at_resolve() {
        // Channel-jam picks come from dedicated per-round streams at
        // simulation time; adding a clause must be a zero-perturbation
        // change to every draw the fault stream makes at resolve time.
        let base = FaultPlan::none()
            .with_random_crashes(3, 20)
            .with_random_jammers(2)
            .with_wake_window(16)
            .with_dormancy(0.5, 30, 5)
            .with_churn(0.05, 40, DownTime::Fixed(3));
        let with = base.clone().with_roaming_channel_jam(2).resolve(32, 42);
        let without = base.resolve(32, 42);
        assert_eq!(with.wake_offsets, without.wake_offsets);
        assert_eq!(with.jammer_list, without.jammer_list);
        assert_eq!(with.crash_round, without.crash_round);
        assert_eq!(with.dormant_from, without.dormant_from);
        assert_eq!(with.down_windows, without.down_windows);
        assert!(with.has_channel_jams());
        assert!(!without.has_channel_jams());
    }

    #[test]
    fn channel_jam_windows_feed_last_fault_round() {
        // Unbounded clause: continuous.
        let r = FaultPlan::none().with_adaptive_channel_jam(1).resolve(4, 0);
        assert_eq!(r.last_fault_round, u64::MAX);
        // Bounded clause: ends at `until - 1`.
        let r = FaultPlan::none()
            .with_channel_jam(ChannelAdversary::Fixed(vec![1]), 3, 20)
            .resolve(4, 0);
        assert_eq!(r.last_fault_round, 19);
    }

    #[test]
    #[should_panic(expected = "budget 0")]
    fn channel_jam_budget_validated() {
        let _ = FaultPlan::none().with_roaming_channel_jam(0);
    }

    #[test]
    #[should_panic(expected = "is empty")]
    fn channel_jam_window_validated() {
        let _ = FaultPlan::none().with_channel_jam(ChannelAdversary::Roaming(1), 5, 5);
    }
}
