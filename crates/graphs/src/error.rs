//! Error types for graph construction and IO.

use std::fmt;

/// Error produced by graph construction, validation, or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint was `>=` the number of nodes.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// The number of nodes in the graph.
        len: usize,
    },
    /// An edge joined a node to itself.
    SelfLoop {
        /// The offending node id.
        node: usize,
    },
    /// An internal CSR invariant was violated (indicates a bug).
    Corrupt(&'static str),
    /// A textual graph description could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Description of what went wrong.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, len } => {
                write!(f, "node {node} out of range for graph with {len} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            GraphError::Corrupt(what) => write!(f, "corrupt graph representation: {what}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GraphError::NodeOutOfRange { node: 7, len: 5 };
        assert_eq!(e.to_string(), "node 7 out of range for graph with 5 nodes");
        let e = GraphError::SelfLoop { node: 3 };
        assert_eq!(e.to_string(), "self-loop at node 3");
        let e = GraphError::Parse {
            line: 2,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
