//! E13 — context: the wired SLEEPING-CONGEST baselines.
//!
//! The paper's related work (§1.4) contrasts radio energy complexities
//! with the wired sleeping model, where Luby/Ghaffari achieve O(log n)
//! worst-case awake complexity (and \[13\] shows O(1) node-averaged is
//! possible). This experiment measures both reference algorithms so
//! EXPERIMENTS.md can show the radio-vs-wired gap concretely.

use crate::harness::{ExpConfig, ExperimentOutput, Section};
use crate::orchestrator::{Orchestrator, UnitKey};
use congest_sim::{CongestSim, GhaffariCongest, LubyCongest};
use mis_graphs::generators::Family;
use mis_stats::table::fmt_num;
use mis_stats::{LineChart, Summary, Table};
use radio_netsim::split_seed;
use serde::{Deserialize, Serialize};

/// Cached value of one `(n, algorithm)` cell: per-trial awake/round
/// measurements from the wired CONGEST simulator.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CongestCell {
    maxes: Vec<f64>,
    avgs: Vec<f64>,
    rounds: Vec<f64>,
    ok: bool,
    cost: u64,
}

/// Runs E13.
pub fn run(cfg: &ExpConfig, orch: &Orchestrator) -> ExperimentOutput {
    let ns = cfg.ns(8, if cfg.quick { 10 } else { 12 });
    let trials = cfg.trials(10);
    let mut table = Table::new([
        "n",
        "algorithm",
        "awake max (mean)",
        "awake node-avg (mean)",
        "rounds (mean)",
        "all MIS",
    ]);
    let mut curves: std::collections::HashMap<&str, Vec<(f64, f64)>> =
        std::collections::HashMap::new();
    for &n in &ns {
        let g = Family::GnpAvgDegree(8).generate(n, cfg.seed ^ n as u64);
        for alg in ["Luby", "Ghaffari"] {
            let cell = orch.unit_with_cost(
                &UnitKey::new("e13", format!("n={n}/{alg}"))
                    .with(
                        "graph",
                        format!(
                            "{}/seed={:#x}",
                            Family::GnpAvgDegree(8).label(),
                            cfg.seed ^ n as u64
                        ),
                    )
                    .with("n", n)
                    .with("alg", format!("{alg}Congest"))
                    .with("seed", cfg.seed)
                    .with("trials", trials),
                || {
                    let mut maxes = Vec::new();
                    let mut avgs = Vec::new();
                    let mut rounds = Vec::new();
                    let mut ok = true;
                    let mut cost = 0u64;
                    for t in 0..trials {
                        let seed = split_seed(cfg.seed, ((n as u64) << 8) ^ t as u64);
                        let report = if alg == "Luby" {
                            CongestSim::new(&g, seed).run(|_, _| LubyCongest::new(n))
                        } else {
                            CongestSim::new(&g, seed)
                                .run(|_, _| GhaffariCongest::new(n, g.max_degree().max(1)))
                        };
                        ok &= report.is_correct_mis(&g);
                        cost += report.awake.iter().sum::<u64>();
                        maxes.push(report.max_awake() as f64);
                        avgs.push(report.avg_awake());
                        rounds.push(report.rounds as f64);
                    }
                    CongestCell {
                        maxes,
                        avgs,
                        rounds,
                        ok,
                        cost,
                    }
                },
                |c| c.cost,
            );
            curves
                .entry(alg)
                .or_default()
                .push((n as f64, Summary::of(&cell.maxes).mean));
            table.push_row([
                n.to_string(),
                alg.to_string(),
                fmt_num(Summary::of(&cell.maxes).mean),
                fmt_num(Summary::of(&cell.avgs).mean),
                fmt_num(Summary::of(&cell.rounds).mean),
                cell.ok.to_string(),
            ]);
        }
    }

    let mut chart = LineChart::new(
        "Wired SLEEPING-CONGEST awake complexity vs n",
        "n (log scale)",
        "max awake rounds (mean)",
    )
    .with_log_x();
    for (alg, pts) in [
        ("Luby", curves.remove("Luby")),
        ("Ghaffari", curves.remove("Ghaffari")),
    ] {
        if let Some(pts) = pts {
            chart.push_series(alg, pts);
        }
    }

    ExperimentOutput {
        id: "e13",
        title: "wired SLEEPING-CONGEST reference points".into(),
        claim: "§1.4 context: without radio collisions, Luby/Ghaffari solve MIS with \
                O(log n) worst-case awake complexity; node-averaged awake complexity is \
                smaller still (cf. [13]'s O(1))."
            .into(),
        sections: vec![Section {
            caption: format!("gnp-d8, {trials} trials per cell"),
            table,
        }],
        findings: vec![
            "wired awake complexity sits at a handful of log n — the collision handling, \
             not the MIS logic, is what radio energy pays for"
                .into(),
        ],
        charts: vec![("e13_awake_vs_n".into(), chart)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_all_correct() {
        let out = run(&ExpConfig::quick(31), &Orchestrator::ephemeral());
        assert!(!out.sections[0].table.is_empty());
        assert!(out.sections[0].table.to_markdown().contains("true"));
        assert!(!out.sections[0].table.to_markdown().contains("false"));
    }
}
