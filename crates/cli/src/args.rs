//! Hand-rolled argument parsing (keeps the dependency set to the workspace
//! baseline).

use mis_graphs::generators::Family;
use radio_netsim::{DownTime, EngineMode, EventKind, FaultPlan};

/// Which algorithm `mis-sim run` executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Algorithm 1 in the CD model.
    Cd,
    /// Algorithm 1 in the beeping model.
    Beeping,
    /// Native beeping MIS with sender-side CD (\[28\]-style).
    BeepingNative,
    /// Naive Luby in the CD model (no early sleep).
    NaiveLuby,
    /// Algorithm 2 in the no-CD model.
    NoCd,
    /// Davies-style LowDegreeMIS (no-CD) on the full graph.
    LowDegree,
    /// Naive CD-over-backoff simulation (no-CD).
    NoCdNaive,
    /// Algorithm 2 with unknown Δ (doubly-exponential guessing).
    UnknownDelta,
    /// t-resilient multichannel MIS (Daum–Kuhn jamming model); pairs with
    /// `--channels`/`--jam-channels`.
    Multichannel,
    /// Luby in the wired SLEEPING-CONGEST model.
    CongestLuby,
    /// Ghaffari in the wired SLEEPING-CONGEST model.
    CongestGhaffari,
}

impl Algorithm {
    /// All algorithm labels, for `mis-sim list`.
    pub fn all() -> [(&'static str, Algorithm); 11] {
        [
            ("cd", Algorithm::Cd),
            ("beeping", Algorithm::Beeping),
            ("beeping-native", Algorithm::BeepingNative),
            ("naive-luby", Algorithm::NaiveLuby),
            ("nocd", Algorithm::NoCd),
            ("low-degree", Algorithm::LowDegree),
            ("nocd-naive", Algorithm::NoCdNaive),
            ("unknown-delta", Algorithm::UnknownDelta),
            ("multichannel", Algorithm::Multichannel),
            ("congest-luby", Algorithm::CongestLuby),
            ("congest-ghaffari", Algorithm::CongestGhaffari),
        ]
    }

    /// Parses an algorithm label.
    ///
    /// # Errors
    ///
    /// Lists the accepted labels on failure.
    pub fn parse(label: &str) -> Result<Algorithm, String> {
        Algorithm::all()
            .into_iter()
            .find(|(l, _)| *l == label)
            .map(|(_, a)| a)
            .ok_or_else(|| {
                format!(
                    "unknown algorithm {label:?}; expected one of: {}",
                    Algorithm::all().map(|(l, _)| l).join(", ")
                )
            })
    }

    /// The stable label.
    pub fn label(self) -> &'static str {
        Algorithm::all()
            .into_iter()
            .find(|(_, a)| *a == self)
            .map(|(l, _)| l)
            .expect("all variants labelled")
    }
}

/// Options for `mis-sim run`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOpts {
    /// Algorithm to execute.
    pub algorithm: Algorithm,
    /// Topology family (ignored when `graph_path` is set).
    pub family: Family,
    /// Network size (ignored when `graph_path` is set).
    pub n: usize,
    /// Load the topology from an edge-list file instead of generating.
    pub graph_path: Option<String>,
    /// Number of independently seeded trials.
    pub trials: usize,
    /// Master seed.
    pub seed: u64,
    /// Fault plan assembled from `--loss`, `--crashes`/`--crash-by`,
    /// `--recover-by`, `--jammers`, `--wake-window`, the `--dormancy*`
    /// flags, the `--churn*` flags, and `--jam-channels`.
    pub faults: FaultPlan,
    /// Number of parallel radio channels F (`--channels`, default 1).
    pub channels: u16,
    /// Round cap (`None` = the engine default). Essential under heavy
    /// faults: a jammed node may never decide, and an uncapped run would
    /// spin to the default 10⁹-round horizon.
    pub max_rounds: Option<u64>,
    /// Checkpoint file for crash-safe sweeps: finished trials are appended
    /// as JSON Lines, and re-running with the same path skips them.
    pub resume: Option<String>,
    /// Use the paper's asymptotic constants instead of the calibrated
    /// presets.
    pub paper_constants: bool,
    /// Wrap the protocol in the generic energy-conservation combinator
    /// (`Conserve`, docs/CONSERVE.md): the CD-class lossless preset for
    /// CD/beeping channels, the whp advertise preset for no-CD.
    pub conserve: bool,
    /// Emit JSON instead of a table.
    pub json: bool,
    /// Write each trial's per-round metrics as JSON Lines to this path.
    pub metrics: Option<String>,
    /// Round-loop backend (`--engine dense|sparse`). Both are
    /// byte-equivalent; `dense` is the slow reference oracle.
    pub engine: EngineMode,
    /// Worker threads for the intra-round engine stages (`--threads`).
    /// Every count produces byte-identical results; 1 stays serial.
    pub threads: usize,
}

impl Default for RunOpts {
    fn default() -> RunOpts {
        RunOpts {
            algorithm: Algorithm::Cd,
            family: Family::GnpAvgDegree(8),
            n: 256,
            graph_path: None,
            trials: 5,
            seed: 0,
            faults: FaultPlan::none(),
            channels: 1,
            max_rounds: None,
            resume: None,
            paper_constants: false,
            conserve: false,
            json: false,
            metrics: None,
            engine: EngineMode::default(),
            threads: 1,
        }
    }
}

/// Options for `mis-sim trace`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceOpts {
    /// Algorithm to trace (radio algorithms only).
    pub algorithm: Algorithm,
    /// Topology family (ignored when `graph_path` is set).
    pub family: Family,
    /// Network size (ignored when `graph_path` is set).
    pub n: usize,
    /// Load the topology from an edge-list file instead of generating.
    pub graph_path: Option<String>,
    /// Master seed of the (single) traced run.
    pub seed: u64,
    /// Fault plan assembled from `--loss`, `--crashes`/`--crash-by`,
    /// `--recover-by`, `--jammers`, `--wake-window`, the `--dormancy*`
    /// flags, the `--churn*` flags, and `--jam-channels`.
    pub faults: FaultPlan,
    /// Number of parallel radio channels F (`--channels`, default 1).
    pub channels: u16,
    /// Round cap (`None` = the engine default).
    pub max_rounds: Option<u64>,
    /// Use the paper's asymptotic constants instead of the calibrated
    /// presets.
    pub paper_constants: bool,
    /// Wrap the protocol in the generic energy-conservation combinator
    /// (`Conserve`, docs/CONSERVE.md), same preset selection as `run`.
    pub conserve: bool,
    /// Event kinds to record (`None` = every kind).
    pub events: Option<Vec<EventKind>>,
    /// Restrict per-node events to these nodes (`None` = all nodes).
    pub nodes: Option<Vec<usize>>,
    /// First round to record (inclusive).
    pub from: Option<u64>,
    /// Last round to record (exclusive).
    pub to: Option<u64>,
    /// Write the JSONL stream here instead of stdout.
    pub out: Option<String>,
    /// Round-loop backend (`--engine dense|sparse`). Both are
    /// byte-equivalent, so the traced stream never depends on this.
    pub engine: EngineMode,
    /// Worker threads for the intra-round engine stages (`--threads`).
    /// Every count streams byte-identical traces; 1 stays serial.
    pub threads: usize,
}

impl Default for TraceOpts {
    fn default() -> TraceOpts {
        TraceOpts {
            algorithm: Algorithm::Cd,
            family: Family::GnpAvgDegree(8),
            n: 256,
            graph_path: None,
            seed: 0,
            faults: FaultPlan::none(),
            channels: 1,
            max_rounds: None,
            paper_constants: false,
            conserve: false,
            events: None,
            nodes: None,
            from: None,
            to: None,
            out: None,
            engine: EngineMode::default(),
            threads: 1,
        }
    }
}

/// Options for `mis-sim graph`.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphOpts {
    /// Topology family.
    pub family: Family,
    /// Network size.
    pub n: usize,
    /// Generator seed.
    pub seed: u64,
    /// Write the edge list here (stdout summary only when `None`).
    pub out: Option<String>,
}

/// Options for `mis-sim verify`.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyOpts {
    /// Edge-list file of the topology.
    pub graph: String,
    /// File with one in-MIS node id per line.
    pub set: String,
}

/// Which centralized solver `mis-sim solve` runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveMode {
    /// Priority solver, push elimination (winners mark neighbors OUT).
    Push,
    /// Priority solver, pull elimination (nodes retire on an IN neighbor).
    Pull,
    /// Priority solver with topology-driven push/pull selection.
    Auto,
    /// Sequential greedy in id order.
    Greedy,
    /// Sequential greedy in a portable-RNG random order.
    RandomGreedy,
}

impl SolveMode {
    /// All mode labels, in the order `--mode` documents them.
    pub fn all() -> [(&'static str, SolveMode); 5] {
        [
            ("push", SolveMode::Push),
            ("pull", SolveMode::Pull),
            ("auto", SolveMode::Auto),
            ("greedy", SolveMode::Greedy),
            ("random-greedy", SolveMode::RandomGreedy),
        ]
    }

    /// Parses a mode label.
    ///
    /// # Errors
    ///
    /// Lists the accepted labels on failure.
    pub fn parse(label: &str) -> Result<SolveMode, String> {
        SolveMode::all()
            .into_iter()
            .find(|(l, _)| *l == label)
            .map(|(_, m)| m)
            .ok_or_else(|| {
                format!(
                    "unknown mode {label:?}; expected one of: {}",
                    SolveMode::all().map(|(l, _)| l).join(", ")
                )
            })
    }

    /// The stable label.
    pub fn label(self) -> &'static str {
        SolveMode::all()
            .into_iter()
            .find(|(_, m)| *m == self)
            .map(|(l, _)| l)
            .expect("all variants labelled")
    }
}

/// Options for `mis-sim solve` — the centralized (global-knowledge) MIS
/// solvers, as opposed to the simulated distributed algorithms of `run`.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveOpts {
    /// Topology family (ignored when `graph_path` is set).
    pub family: Family,
    /// Network size (ignored when `graph_path` is set).
    pub n: usize,
    /// Load the topology from an edge-list file instead of generating.
    pub graph_path: Option<String>,
    /// Seed for the graph generator and the solver's priorities/shuffle.
    pub seed: u64,
    /// Worker threads for the parallel solver and verifier. Every count
    /// produces byte-identical results; 1 stays serial.
    pub threads: usize,
    /// Which solver to run.
    pub mode: SolveMode,
    /// Write the set here as one node id per line (`verify`-compatible).
    pub out: Option<String>,
    /// Re-check the output with the parallel verifier before reporting.
    pub verify: bool,
}

impl Default for SolveOpts {
    fn default() -> SolveOpts {
        SolveOpts {
            family: Family::GnpAvgDegree(8),
            n: 256,
            graph_path: None,
            seed: 0,
            threads: 1,
            mode: SolveMode::Auto,
            out: None,
            verify: false,
        }
    }
}

/// Options for `mis-sim bench-serve` — the load generator for the
/// `mis-serve` daemon (docs/SERVE.md).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchServeOpts {
    /// Address of a running daemon; `None` spins an in-process server
    /// (its own worker pool, fresh or `--cache-dir` cache).
    pub addr: Option<String>,
    /// Concurrent clients, each with its own `X-Client` id.
    pub clients: usize,
    /// Jobs per client, each with a distinct seed.
    pub jobs: usize,
    /// Algorithm submitted in every job (serve-side algorithms only:
    /// cd, beeping, nocd, low-degree, naive-luby).
    pub algorithm: Algorithm,
    /// Topology family submitted in every job.
    pub family: Family,
    /// Network size submitted in every job.
    pub n: usize,
    /// Base seed; job (c, j) uses `seed + c*jobs + j`.
    pub seed: u64,
    /// Trials per job.
    pub trials: usize,
    /// Cache directory for the in-process server (ignored with
    /// `--addr`). Default: a fresh temp dir, so the cold pass is cold.
    pub cache_dir: Option<String>,
}

impl Default for BenchServeOpts {
    fn default() -> BenchServeOpts {
        BenchServeOpts {
            addr: None,
            clients: 8,
            jobs: 4,
            algorithm: Algorithm::Cd,
            family: Family::GnpAvgDegree(8),
            n: 256,
            seed: 0,
            trials: 2,
            cache_dir: None,
        }
    }
}

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `mis-sim run`.
    Run(RunOpts),
    /// `mis-sim trace`.
    Trace(TraceOpts),
    /// `mis-sim graph`.
    Graph(GraphOpts),
    /// `mis-sim verify`.
    Verify(VerifyOpts),
    /// `mis-sim solve`.
    Solve(SolveOpts),
    /// `mis-sim bench-serve`.
    BenchServe(BenchServeOpts),
    /// `mis-sim list`.
    List,
}

/// The full parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The subcommand.
    pub command: Command,
}

/// Usage text.
pub const USAGE: &str = "\
mis-sim — energy-efficient radio MIS simulator

USAGE:
  mis-sim run    --algorithm <ALG> (--family <FAM> --n <N> | --graph <FILE>)
                 [--trials <T>] [--seed <S>] [--max-rounds <R>] [FAULTS]
                 [--channels <F>] [--paper-constants] [--conserve] [--json]
                 [--metrics <FILE>] [--resume <FILE>]
                 [--engine dense|sparse] [--threads <T>]
  mis-sim trace  --algorithm <ALG> (--family <FAM> --n <N> | --graph <FILE>)
                 [--seed <S>] [--max-rounds <R>] [FAULTS] [--channels <F>]
                 [--paper-constants] [--conserve] [--events <K,K,..>]
                 [--nodes <V,V,..>] [--from <ROUND>] [--to <ROUND>]
                 [--out <FILE>] [--engine dense|sparse] [--threads <T>]
  mis-sim graph  --family <FAM> --n <N> [--seed <S>] [--out <FILE>]
  mis-sim verify --graph <FILE> --set <FILE>
  mis-sim solve  (--family <FAM> --n <N> | --graph <FILE>) [--seed <S>]
                 [--mode push|pull|auto|greedy|random-greedy]
                 [--threads <T>] [--out <FILE>] [--verify]
  mis-sim bench-serve [--addr <HOST:PORT>] [--clients <C>] [--jobs <J>]
                 [--algorithm <ALG>] [--family <FAM>] [--n <N>] [--seed <S>]
                 [--trials <T>] [--cache-dir <DIR>]
  mis-sim list

FAULTS (radio algorithms only; resolved deterministically from --seed):
  --loss <P>            per-edge reception-loss probability in [0, 1]
  --crashes <K>         crash-stop K random nodes ...
  --crash-by <R>        ... at rounds drawn uniformly from [0, R] (default 0)
  --jammers <K>         K random nodes become noise jammers for the run
  --wake-window <W>     random per-node wake-up offsets in [0, W)
  --dormancy <P>        each node independently gets a dead-radio window
                        with probability P ...
  --dormancy-start <R>  ... starting uniformly in [0, R] (default 0)
  --dormancy-len <L>    ... lasting L rounds (default 8)
  --recover-by <R>      crashed nodes restart (state wiped, re-admitted) at
                        a round drawn uniformly in (crash, R]; needs --crashes
  --churn <RATE>        per-round probability that an up node goes down ...
  --churn-until <R>     ... with no new outage at or after round R
                        (default 1000) ...
  --churn-downtime <D>  ... staying down D rounds, or LO:HI for a uniform
                        draw from [LO, HI] (default 8)
  --jam-channels <T>    a global adaptive adversary jams the T busiest of
                        the --channels F channels every round (needs T < F)

`--channels F` gives the radios F parallel channels (default 1); protocols
pick one per round with Action::on_channel. The `multichannel` algorithm is
built for this model and tolerates any `--jam-channels T` with T < F; the
single-channel algorithms keep all traffic on channel 0, which an adaptive
jammer shuts down outright (experiment E17 measures the contrast).

`run --metrics` appends one JSON line per (trial, processed round) with the
channel metrics of that round. `run --resume FILE` checkpoints each finished
trial to FILE as JSON Lines and, when re-run with the same FILE, re-runs
only the missing trials — a killed sweep loses at most one trial's work.
`trace` streams the events of a single run
as JSON Lines; event kinds are acted, fed, status, finished, fault, metrics.
`--engine` picks the round-loop backend: the default `sparse` wake queue,
or the `dense` per-node-scan reference oracle. Both are byte-equivalent —
same reports, same metrics, same trace stream — so the flag only changes
speed, never results. `--threads` shards each round's act and delivery
phases across that many workers (default 1 = serial); like `--engine`,
every thread count produces byte-identical results, so the flag only
changes speed (see docs/PARALLEL_ENGINE.md for the determinism contract).

`--conserve` wraps the chosen single-channel radio algorithm in the generic
energy-conservation combinator (docs/CONSERVE.md): nodes sleep through most
of each epoch and a short advertise window wakes a neighborhood only when
someone has something to send; missed quiet rounds are replayed from the
buffer. On CD/beeping channels the lossless preset preserves the native
decisions exactly; on no-CD channels the whp preset is used. Not available
for the multichannel or wired CONGEST algorithms.

`solve` runs the *centralized* (global-knowledge) solvers — the priority
MIS solver with push/pull/auto neighbor elimination, or the sequential
greedy baselines — as the cost-of-distributedness yardstick. Output is
deterministic in (graph, --seed) at every --threads count; `--out` writes
a `verify`-compatible set file and `--verify` re-checks the result with
the parallel verifier before reporting.

`bench-serve` is the load generator for the `mis-serve` job daemon
(docs/SERVE.md): C concurrent clients each submit J distinct jobs, then the
whole fleet re-submits the same jobs. The cold pass must miss the
content-addressed cache and the warm pass must hit it, so the report shows
the cold-vs-warm hit rates and latency quantiles side by side. Without
`--addr` an in-process daemon is spun up on a fresh cache; point `--addr`
at a running `mis-serve` to measure over the wire.

Run `mis-sim list` for the available algorithms and families.";

/// Parses a full argument vector (without the program name).
///
/// # Errors
///
/// Returns a user-facing message (usually followed by [`USAGE`]).
pub fn parse(args: &[String]) -> Result<Cli, String> {
    let mut it = args.iter().map(String::as_str);
    let sub = it.next().ok_or("missing subcommand")?;
    let rest: Vec<&str> = it.collect();
    let command = match sub {
        "run" => Command::Run(parse_run(&rest)?),
        "trace" => Command::Trace(parse_trace(&rest)?),
        "graph" => Command::Graph(parse_graph(&rest)?),
        "verify" => Command::Verify(parse_verify(&rest)?),
        "solve" => Command::Solve(parse_solve(&rest)?),
        "bench-serve" => Command::BenchServe(parse_bench_serve(&rest)?),
        "list" => {
            if !rest.is_empty() {
                return Err("`list` takes no options".into());
            }
            Command::List
        }
        other => return Err(format!("unknown subcommand {other:?}")),
    };
    Ok(Cli { command })
}

/// Pulls `--key value` pairs and bare flags out of an argument list.
fn take_options<'a>(
    args: &[&'a str],
    flags: &[&str],
) -> Result<std::collections::HashMap<String, Option<&'a str>>, String> {
    let mut out = std::collections::HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i];
        if !key.starts_with("--") {
            return Err(format!("unexpected argument {key:?}"));
        }
        let name = key.trim_start_matches("--").to_string();
        if flags.contains(&name.as_str()) {
            out.insert(name, None);
            i += 1;
        } else {
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("{key} requires a value"))?;
            out.insert(name, Some(*value));
            i += 2;
        }
    }
    Ok(out)
}

fn req<'a>(
    opts: &std::collections::HashMap<String, Option<&'a str>>,
    key: &str,
) -> Result<&'a str, String> {
    opts.get(key)
        .and_then(|v| *v)
        .ok_or_else(|| format!("missing required option --{key}"))
}

fn parse_num<T: std::str::FromStr>(value: &str, key: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    value
        .parse()
        .map_err(|e| format!("invalid --{key} {value:?}: {e}"))
}

/// The fault-flag names shared by `run` and `trace`.
const FAULT_KEYS: [&str; 12] = [
    "loss",
    "crashes",
    "crash-by",
    "jammers",
    "wake-window",
    "dormancy",
    "dormancy-start",
    "dormancy-len",
    "recover-by",
    "churn",
    "churn-until",
    "churn-downtime",
];

/// Parses an `--engine` value.
fn parse_engine(value: &str) -> Result<EngineMode, String> {
    match value {
        "dense" => Ok(EngineMode::Dense),
        "sparse" => Ok(EngineMode::Sparse),
        other => Err(format!(
            "unknown engine {other:?}; expected dense or sparse"
        )),
    }
}

/// Parses a `--churn-downtime` value: `"D"` for a fixed outage length or
/// `"LO:HI"` for a uniform draw.
fn parse_downtime(value: &str) -> Result<DownTime, String> {
    if let Some((lo, hi)) = value.split_once(':') {
        let lo: u64 = parse_num(lo, "churn-downtime")?;
        let hi: u64 = parse_num(hi, "churn-downtime")?;
        if lo == 0 || hi < lo {
            return Err(format!(
                "--churn-downtime {value:?} must satisfy 1 ≤ LO ≤ HI"
            ));
        }
        Ok(DownTime::Uniform { lo, hi })
    } else {
        let d: u64 = parse_num(value, "churn-downtime")?;
        if d == 0 {
            return Err("--churn-downtime must be ≥ 1".into());
        }
        Ok(DownTime::Fixed(d))
    }
}

/// Assembles a [`FaultPlan`] from the shared fault flags.
fn parse_faults(
    opts: &std::collections::HashMap<String, Option<&str>>,
) -> Result<FaultPlan, String> {
    let mut plan = FaultPlan::none();
    if let Some(Some(v)) = opts.get("loss") {
        let p: f64 = parse_num(v, "loss")?;
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("--loss {p} outside [0, 1]"));
        }
        plan = plan.with_loss(p);
    }
    let crashes: usize = match opts.get("crashes") {
        Some(Some(v)) => parse_num(v, "crashes")?,
        _ => 0,
    };
    if crashes > 0 {
        let by: u64 = match opts.get("crash-by") {
            Some(Some(v)) => parse_num(v, "crash-by")?,
            _ => 0,
        };
        plan = plan.with_random_crashes(crashes, by);
        if let Some(Some(v)) = opts.get("recover-by") {
            let r: u64 = parse_num(v, "recover-by")?;
            if r <= by {
                return Err(format!("--recover-by {r} must be above --crash-by {by}"));
            }
            plan = plan.with_recover_by(r);
        }
    } else if opts.contains_key("crash-by") {
        return Err("--crash-by requires --crashes".into());
    } else if opts.contains_key("recover-by") {
        return Err("--recover-by requires --crashes".into());
    }
    if let Some(Some(v)) = opts.get("jammers") {
        let k: usize = parse_num(v, "jammers")?;
        if k > 0 {
            plan = plan.with_random_jammers(k);
        }
    }
    if let Some(Some(v)) = opts.get("wake-window") {
        let w: u64 = parse_num(v, "wake-window")?;
        if w > 0 {
            plan = plan.with_wake_window(w);
        }
    }
    if let Some(Some(v)) = opts.get("dormancy") {
        let p: f64 = parse_num(v, "dormancy")?;
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("--dormancy {p} outside [0, 1]"));
        }
        if p > 0.0 {
            let start: u64 = match opts.get("dormancy-start") {
                Some(Some(v)) => parse_num(v, "dormancy-start")?,
                _ => 0,
            };
            let len: u64 = match opts.get("dormancy-len") {
                Some(Some(v)) => parse_num(v, "dormancy-len")?,
                _ => 8,
            };
            if len == 0 {
                return Err("--dormancy-len must be ≥ 1".into());
            }
            plan = plan.with_dormancy(p, start, len);
        }
    } else if opts.contains_key("dormancy-start") || opts.contains_key("dormancy-len") {
        return Err("--dormancy-start/--dormancy-len require --dormancy".into());
    }
    if let Some(Some(v)) = opts.get("churn") {
        let rate: f64 = parse_num(v, "churn")?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("--churn {rate} outside [0, 1]"));
        }
        if rate > 0.0 {
            let until: u64 = match opts.get("churn-until") {
                Some(Some(v)) => parse_num(v, "churn-until")?,
                _ => 1000,
            };
            let downtime = match opts.get("churn-downtime") {
                Some(Some(v)) => parse_downtime(v)?,
                _ => DownTime::Fixed(8),
            };
            plan = plan.with_churn(rate, until, downtime);
        }
    } else if opts.contains_key("churn-until") || opts.contains_key("churn-downtime") {
        return Err("--churn-until/--churn-downtime require --churn".into());
    }
    Ok(plan)
}

/// Parses `--channels`/`--jam-channels` into the channel count F and, when
/// a jamming budget t is given, an adaptive channel adversary on the plan.
fn parse_channels(
    opts: &std::collections::HashMap<String, Option<&str>>,
    mut plan: FaultPlan,
) -> Result<(u16, FaultPlan), String> {
    let channels: u16 = match opts.get("channels") {
        Some(Some(v)) => parse_num(v, "channels")?,
        _ => 1,
    };
    if channels == 0 {
        return Err("--channels must be ≥ 1".into());
    }
    if let Some(Some(v)) = opts.get("jam-channels") {
        let t: u16 = parse_num(v, "jam-channels")?;
        if t >= channels {
            return Err(format!(
                "--jam-channels {t} must be below --channels {channels} (the \
                 adversary needs t < F)"
            ));
        }
        if t > 0 {
            plan = plan.with_adaptive_channel_jam(t);
        }
    }
    Ok((channels, plan))
}

fn parse_run(args: &[&str]) -> Result<RunOpts, String> {
    let opts = take_options(args, &["paper-constants", "json", "conserve"])?;
    for key in opts.keys() {
        if ![
            "algorithm",
            "family",
            "n",
            "graph",
            "trials",
            "seed",
            "max-rounds",
            "paper-constants",
            "conserve",
            "json",
            "metrics",
            "resume",
            "engine",
            "threads",
            "channels",
            "jam-channels",
        ]
        .contains(&key.as_str())
            && !FAULT_KEYS.contains(&key.as_str())
        {
            return Err(format!("unknown option --{key} for `run`"));
        }
    }
    let mut run = RunOpts {
        algorithm: Algorithm::parse(req(&opts, "algorithm")?)?,
        ..RunOpts::default()
    };
    run.graph_path = opts.get("graph").and_then(|v| v.map(str::to_string));
    if run.graph_path.is_none() {
        run.family = Family::parse(req(&opts, "family")?)?;
        run.n = parse_num(req(&opts, "n")?, "n")?;
    }
    if let Some(Some(v)) = opts.get("trials") {
        run.trials = parse_num(v, "trials")?;
    }
    if let Some(Some(v)) = opts.get("seed") {
        run.seed = parse_num(v, "seed")?;
    }
    if let Some(Some(v)) = opts.get("max-rounds") {
        run.max_rounds = Some(parse_num(v, "max-rounds")?);
    }
    let (channels, faults) = parse_channels(&opts, parse_faults(&opts)?)?;
    run.channels = channels;
    run.faults = faults;
    run.paper_constants = opts.contains_key("paper-constants");
    run.conserve = opts.contains_key("conserve");
    run.json = opts.contains_key("json");
    run.metrics = opts.get("metrics").and_then(|v| v.map(str::to_string));
    run.resume = opts.get("resume").and_then(|v| v.map(str::to_string));
    if let Some(Some(v)) = opts.get("engine") {
        run.engine = parse_engine(v)?;
    }
    if let Some(Some(v)) = opts.get("threads") {
        run.threads = parse_num(v, "threads")?;
        if run.threads == 0 {
            return Err("--threads must be ≥ 1".into());
        }
    }
    if run.trials == 0 {
        return Err("--trials must be ≥ 1".into());
    }
    Ok(run)
}

/// Parses a comma-separated list with one error message per bad element.
fn parse_list<T>(
    value: &str,
    key: &str,
    parse_one: impl Fn(&str) -> Result<T, String>,
) -> Result<Vec<T>, String> {
    value
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| parse_one(s).map_err(|e| format!("invalid --{key} element {s:?}: {e}")))
        .collect()
}

fn parse_trace(args: &[&str]) -> Result<TraceOpts, String> {
    let opts = take_options(args, &["paper-constants", "conserve"])?;
    for key in opts.keys() {
        if ![
            "algorithm",
            "family",
            "n",
            "graph",
            "seed",
            "max-rounds",
            "paper-constants",
            "conserve",
            "events",
            "nodes",
            "from",
            "to",
            "out",
            "engine",
            "threads",
            "channels",
            "jam-channels",
        ]
        .contains(&key.as_str())
            && !FAULT_KEYS.contains(&key.as_str())
        {
            return Err(format!("unknown option --{key} for `trace`"));
        }
    }
    let mut trace = TraceOpts {
        algorithm: Algorithm::parse(req(&opts, "algorithm")?)?,
        ..TraceOpts::default()
    };
    trace.graph_path = opts.get("graph").and_then(|v| v.map(str::to_string));
    if trace.graph_path.is_none() {
        trace.family = Family::parse(req(&opts, "family")?)?;
        trace.n = parse_num(req(&opts, "n")?, "n")?;
    }
    if let Some(Some(v)) = opts.get("seed") {
        trace.seed = parse_num(v, "seed")?;
    }
    if let Some(Some(v)) = opts.get("max-rounds") {
        trace.max_rounds = Some(parse_num(v, "max-rounds")?);
    }
    let (channels, faults) = parse_channels(&opts, parse_faults(&opts)?)?;
    trace.channels = channels;
    trace.faults = faults;
    trace.paper_constants = opts.contains_key("paper-constants");
    trace.conserve = opts.contains_key("conserve");
    if let Some(Some(v)) = opts.get("events") {
        trace.events = Some(parse_list(v, "events", EventKind::parse)?);
    }
    if let Some(Some(v)) = opts.get("nodes") {
        trace.nodes = Some(parse_list(v, "nodes", |s| parse_num(s, "nodes"))?);
    }
    if let Some(Some(v)) = opts.get("from") {
        trace.from = Some(parse_num(v, "from")?);
    }
    if let Some(Some(v)) = opts.get("to") {
        trace.to = Some(parse_num(v, "to")?);
    }
    if let (Some(from), Some(to)) = (trace.from, trace.to) {
        if from >= to {
            return Err(format!("--from {from} must be below --to {to}"));
        }
    }
    trace.out = opts.get("out").and_then(|v| v.map(str::to_string));
    if let Some(Some(v)) = opts.get("engine") {
        trace.engine = parse_engine(v)?;
    }
    if let Some(Some(v)) = opts.get("threads") {
        trace.threads = parse_num(v, "threads")?;
        if trace.threads == 0 {
            return Err("--threads must be ≥ 1".into());
        }
    }
    Ok(trace)
}

fn parse_graph(args: &[&str]) -> Result<GraphOpts, String> {
    let opts = take_options(args, &[])?;
    for key in opts.keys() {
        if !["family", "n", "seed", "out"].contains(&key.as_str()) {
            return Err(format!("unknown option --{key} for `graph`"));
        }
    }
    Ok(GraphOpts {
        family: Family::parse(req(&opts, "family")?)?,
        n: parse_num(req(&opts, "n")?, "n")?,
        seed: match opts.get("seed") {
            Some(Some(v)) => parse_num(v, "seed")?,
            _ => 0,
        },
        out: opts.get("out").and_then(|v| v.map(str::to_string)),
    })
}

fn parse_verify(args: &[&str]) -> Result<VerifyOpts, String> {
    let opts = take_options(args, &[])?;
    Ok(VerifyOpts {
        graph: req(&opts, "graph")?.to_string(),
        set: req(&opts, "set")?.to_string(),
    })
}

fn parse_solve(args: &[&str]) -> Result<SolveOpts, String> {
    let opts = take_options(args, &["verify"])?;
    for key in opts.keys() {
        if ![
            "family", "n", "graph", "seed", "threads", "mode", "out", "verify",
        ]
        .contains(&key.as_str())
        {
            return Err(format!("unknown option --{key} for `solve`"));
        }
    }
    let mut solve = SolveOpts {
        graph_path: opts.get("graph").and_then(|v| v.map(str::to_string)),
        ..SolveOpts::default()
    };
    if solve.graph_path.is_none() {
        solve.family = Family::parse(req(&opts, "family")?)?;
        solve.n = parse_num(req(&opts, "n")?, "n")?;
    }
    if let Some(Some(v)) = opts.get("seed") {
        solve.seed = parse_num(v, "seed")?;
    }
    if let Some(Some(v)) = opts.get("threads") {
        solve.threads = parse_num(v, "threads")?;
        if solve.threads == 0 {
            return Err("--threads must be ≥ 1".into());
        }
    }
    if let Some(Some(v)) = opts.get("mode") {
        solve.mode = SolveMode::parse(v)?;
    }
    solve.out = opts.get("out").and_then(|v| v.map(str::to_string));
    solve.verify = opts.contains_key("verify");
    Ok(solve)
}

fn parse_bench_serve(args: &[&str]) -> Result<BenchServeOpts, String> {
    let opts = take_options(args, &[])?;
    for key in opts.keys() {
        if ![
            "addr",
            "clients",
            "jobs",
            "algorithm",
            "family",
            "n",
            "seed",
            "trials",
            "cache-dir",
        ]
        .contains(&key.as_str())
        {
            return Err(format!("unknown option --{key} for `bench-serve`"));
        }
    }
    let mut bench = BenchServeOpts {
        addr: opts.get("addr").and_then(|v| v.map(str::to_string)),
        ..BenchServeOpts::default()
    };
    bench.cache_dir = opts.get("cache-dir").and_then(|v| v.map(str::to_string));
    if let Some(Some(v)) = opts.get("clients") {
        bench.clients = parse_num(v, "clients")?;
    }
    if let Some(Some(v)) = opts.get("jobs") {
        bench.jobs = parse_num(v, "jobs")?;
    }
    if let Some(Some(v)) = opts.get("algorithm") {
        bench.algorithm = Algorithm::parse(v)?;
    }
    if let Some(Some(v)) = opts.get("family") {
        bench.family = Family::parse(v)?;
    }
    if let Some(Some(v)) = opts.get("n") {
        bench.n = parse_num(v, "n")?;
    }
    if let Some(Some(v)) = opts.get("seed") {
        bench.seed = parse_num(v, "seed")?;
    }
    if let Some(Some(v)) = opts.get("trials") {
        bench.trials = parse_num(v, "trials")?;
    }
    if bench.clients == 0 || bench.jobs == 0 {
        return Err("--clients and --jobs must be ≥ 1".into());
    }
    if bench.trials == 0 {
        return Err("--trials must be ≥ 1".into());
    }
    Ok(bench)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(line: &str) -> Cli {
        let args: Vec<String> = line.split_whitespace().map(str::to_string).collect();
        parse(&args).unwrap()
    }

    #[test]
    fn parses_run() {
        let cli = parse_ok(
            "run --algorithm nocd --family udg-d10 --n 500 --trials 3 --seed 9 --loss 0.1 --json",
        );
        match cli.command {
            Command::Run(r) => {
                assert_eq!(r.algorithm, Algorithm::NoCd);
                assert_eq!(r.family, Family::GeometricAvgDegree(10));
                assert_eq!(r.n, 500);
                assert_eq!(r.trials, 3);
                assert_eq!(r.seed, 9);
                assert!((r.faults.loss - 0.1).abs() < 1e-12);
                assert!(r.json);
                assert!(!r.paper_constants);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_fault_flags_into_a_plan() {
        let cli = parse_ok(
            "run --algorithm cd --family star --n 16 --loss 0.2 --crashes 3 \
             --crash-by 40 --jammers 2 --wake-window 8 --dormancy 0.5 \
             --dormancy-start 10 --dormancy-len 4",
        );
        match cli.command {
            Command::Run(r) => {
                let f = &r.faults;
                assert!(!f.is_inert());
                assert!((f.loss - 0.2).abs() < 1e-12);
                let rc = f.random_crashes.as_ref().unwrap();
                assert_eq!((rc.count, rc.by_round), (3, 40));
                assert_eq!(f.random_jammers, 2);
                assert_eq!(f.wake, radio_netsim::WakePlan::RandomWindow(8));
                let d = f.dormancy.as_ref().unwrap();
                assert!((d.probability - 0.5).abs() < 1e-12);
                assert_eq!((d.latest_start, d.duration), (10, 4));
            }
            other => panic!("{other:?}"),
        }
        // Fault flags parse identically on `trace`.
        let cli = parse_ok("trace --algorithm cd --family star --n 16 --jammers 1");
        match cli.command {
            Command::Trace(t) => assert_eq!(t.faults.random_jammers, 1),
            other => panic!("{other:?}"),
        }
        // No fault flags → inert plan.
        let cli = parse_ok("run --algorithm cd --family star --n 16");
        match cli.command {
            Command::Run(r) => assert!(r.faults.is_inert()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_recovery_flags_into_a_plan() {
        let cli = parse_ok(
            "run --algorithm cd --family star --n 16 --crashes 3 --crash-by 40 \
             --recover-by 90 --churn 0.01 --churn-until 500 --churn-downtime 3:9",
        );
        match cli.command {
            Command::Run(r) => {
                let f = &r.faults;
                assert!(!f.is_inert());
                assert_eq!(f.recover_by, Some(90));
                let c = f.churn.as_ref().unwrap();
                assert!((c.rate - 0.01).abs() < 1e-12);
                assert_eq!(c.until, 500);
                assert_eq!(c.downtime, DownTime::Uniform { lo: 3, hi: 9 });
            }
            other => panic!("{other:?}"),
        }
        // Fixed down-time spelling, with the default window.
        let cli =
            parse_ok("run --algorithm cd --family star --n 16 --churn 0.02 --churn-downtime 5");
        match cli.command {
            Command::Run(r) => {
                let c = r.faults.churn.as_ref().unwrap();
                assert_eq!(c.downtime, DownTime::Fixed(5));
                assert_eq!(c.until, 1000);
            }
            other => panic!("{other:?}"),
        }
        // Churn flags parse identically on `trace`.
        let cli = parse_ok("trace --algorithm cd --family star --n 16 --churn 0.05");
        match cli.command {
            Command::Trace(t) => assert!(t.faults.churn.is_some()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_channel_flags() {
        let cli = parse_ok(
            "run --algorithm multichannel --family star --n 16 --channels 4 --jam-channels 2",
        );
        match cli.command {
            Command::Run(r) => {
                assert_eq!(r.algorithm, Algorithm::Multichannel);
                assert_eq!(r.channels, 4);
                assert_eq!(r.faults.max_jammed_channels(), 2);
            }
            other => panic!("{other:?}"),
        }
        // Defaults: single channel, no channel adversary.
        let cli = parse_ok("run --algorithm cd --family star --n 16");
        match cli.command {
            Command::Run(r) => {
                assert_eq!(r.channels, 1);
                assert_eq!(r.faults.max_jammed_channels(), 0);
            }
            other => panic!("{other:?}"),
        }
        // A zero budget parses as "no adversary".
        let cli = parse_ok("run --algorithm cd --family star --n 16 --channels 2 --jam-channels 0");
        match cli.command {
            Command::Run(r) => assert_eq!(r.faults.max_jammed_channels(), 0),
            other => panic!("{other:?}"),
        }
        // The flags parse identically on `trace`.
        let cli = parse_ok(
            "trace --algorithm multichannel --family star --n 16 --channels 2 --jam-channels 1",
        );
        match cli.command {
            Command::Trace(t) => {
                assert_eq!(t.channels, 2);
                assert_eq!(t.faults.max_jammed_channels(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_bad_channel_flags() {
        let check = |line: &str, needle: &str| {
            let args: Vec<String> = line.split_whitespace().map(str::to_string).collect();
            let err = parse(&args).unwrap_err();
            assert!(err.contains(needle), "{err:?} missing {needle:?}");
        };
        check(
            "run --algorithm cd --family star --n 4 --channels 0",
            "--channels must be ≥ 1",
        );
        check(
            "run --algorithm multichannel --family star --n 4 --channels 2 --jam-channels 2",
            "must be below --channels",
        );
        check(
            "run --algorithm multichannel --family star --n 4 --jam-channels 1",
            "must be below --channels",
        );
    }

    #[test]
    fn parses_run_with_resume_path() {
        let cli = parse_ok("run --algorithm cd --family star --n 16 --resume sweep.jsonl");
        match cli.command {
            Command::Run(r) => assert_eq!(r.resume.as_deref(), Some("sweep.jsonl")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_bad_recovery_flags() {
        let check = |line: &str, needle: &str| {
            let args: Vec<String> = line.split_whitespace().map(str::to_string).collect();
            let err = parse(&args).unwrap_err();
            assert!(err.contains(needle), "{err:?} missing {needle:?}");
        };
        check(
            "run --algorithm cd --family star --n 4 --recover-by 9",
            "requires --crashes",
        );
        check(
            "run --algorithm cd --family star --n 4 --crashes 2 --crash-by 10 --recover-by 5",
            "must be above",
        );
        check(
            "run --algorithm cd --family star --n 4 --churn-until 50",
            "require --churn",
        );
        check(
            "run --algorithm cd --family star --n 4 --churn 2",
            "outside [0, 1]",
        );
        check(
            "run --algorithm cd --family star --n 4 --churn 0.1 --churn-downtime 0",
            "≥ 1",
        );
        check(
            "run --algorithm cd --family star --n 4 --churn 0.1 --churn-downtime 9:3",
            "LO ≤ HI",
        );
        check(
            "run --algorithm cd --family star --n 4 --churn 0.1 --churn-downtime x:3",
            "invalid --churn-downtime",
        );
    }

    #[test]
    fn parses_engine_flag_and_defaults_to_sparse() {
        let cli = parse_ok("run --algorithm cd --family star --n 16 --engine dense");
        match cli.command {
            Command::Run(r) => assert_eq!(r.engine, EngineMode::Dense),
            other => panic!("{other:?}"),
        }
        let cli = parse_ok("run --algorithm cd --family star --n 16");
        match cli.command {
            Command::Run(r) => assert_eq!(r.engine, EngineMode::Sparse),
            other => panic!("{other:?}"),
        }
        let cli = parse_ok("trace --algorithm cd --family star --n 16 --engine dense");
        match cli.command {
            Command::Trace(t) => assert_eq!(t.engine, EngineMode::Dense),
            other => panic!("{other:?}"),
        }
        let cli = parse_ok("trace --algorithm cd --family star --n 16 --engine sparse");
        match cli.command {
            Command::Trace(t) => assert_eq!(t.engine, EngineMode::Sparse),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_threads_flag_and_defaults_to_serial() {
        let cli = parse_ok("run --algorithm cd --family star --n 16 --threads 4");
        match cli.command {
            Command::Run(r) => assert_eq!(r.threads, 4),
            other => panic!("{other:?}"),
        }
        let cli = parse_ok("run --algorithm cd --family star --n 16");
        match cli.command {
            Command::Run(r) => assert_eq!(r.threads, 1),
            other => panic!("{other:?}"),
        }
        let cli = parse_ok("trace --algorithm cd --family star --n 16 --threads 8");
        match cli.command {
            Command::Trace(t) => assert_eq!(t.threads, 8),
            other => panic!("{other:?}"),
        }
        let check = |line: &str| {
            let args: Vec<String> = line.split_whitespace().map(str::to_string).collect();
            let err = parse(&args).unwrap_err();
            assert!(err.contains("--threads must be ≥ 1"), "{err:?}");
        };
        check("run --algorithm cd --family star --n 16 --threads 0");
        check("trace --algorithm cd --family star --n 16 --threads 0");
    }

    #[test]
    fn rejects_unknown_engine() {
        let args: Vec<String> = "run --algorithm cd --family star --n 4 --engine warp"
            .split_whitespace()
            .map(str::to_string)
            .collect();
        let err = parse(&args).unwrap_err();
        assert!(err.contains("unknown engine"), "{err:?}");
    }

    #[test]
    fn parses_conserve_flag_and_defaults_off() {
        let cli = parse_ok("run --algorithm cd --family star --n 16 --conserve");
        match cli.command {
            Command::Run(r) => assert!(r.conserve),
            other => panic!("{other:?}"),
        }
        let cli = parse_ok("run --algorithm cd --family star --n 16");
        match cli.command {
            Command::Run(r) => assert!(!r.conserve),
            other => panic!("{other:?}"),
        }
        let cli = parse_ok("trace --algorithm nocd --family star --n 16 --conserve");
        match cli.command {
            Command::Trace(t) => assert!(t.conserve),
            other => panic!("{other:?}"),
        }
        let cli = parse_ok("trace --algorithm nocd --family star --n 16");
        match cli.command {
            Command::Trace(t) => assert!(!t.conserve),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_run_with_metrics_path() {
        let cli = parse_ok("run --algorithm cd --family star --n 16 --metrics out.jsonl");
        match cli.command {
            Command::Run(r) => assert_eq!(r.metrics.as_deref(), Some("out.jsonl")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_trace() {
        let cli = parse_ok(
            "trace --algorithm nocd --family star --n 32 --seed 4 \
             --events acted,metrics --nodes 0,3,5 --from 2 --to 9 --out t.jsonl",
        );
        match cli.command {
            Command::Trace(t) => {
                assert_eq!(t.algorithm, Algorithm::NoCd);
                assert_eq!(t.n, 32);
                assert_eq!(t.seed, 4);
                assert_eq!(
                    t.events,
                    Some(vec![EventKind::Acted, EventKind::RoundMetrics])
                );
                assert_eq!(t.nodes, Some(vec![0, 3, 5]));
                assert_eq!(t.from, Some(2));
                assert_eq!(t.to, Some(9));
                assert_eq!(t.out.as_deref(), Some("t.jsonl"));
                assert!(!t.paper_constants);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn trace_defaults_are_unfiltered() {
        let cli = parse_ok("trace --algorithm cd --graph topo.txt");
        match cli.command {
            Command::Trace(t) => {
                assert_eq!(t.graph_path.as_deref(), Some("topo.txt"));
                assert_eq!(t.events, None);
                assert_eq!(t.nodes, None);
                assert_eq!(t.from, None);
                assert_eq!(t.to, None);
                assert_eq!(t.out, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_run_with_graph_file() {
        let cli = parse_ok("run --algorithm cd --graph topo.txt");
        match cli.command {
            Command::Run(r) => assert_eq!(r.graph_path.as_deref(), Some("topo.txt")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_graph_and_verify_and_list() {
        assert!(matches!(
            parse_ok("graph --family star --n 64 --out g.txt").command,
            Command::Graph(_)
        ));
        assert!(matches!(
            parse_ok("verify --graph g.txt --set s.txt").command,
            Command::Verify(_)
        ));
        assert_eq!(parse_ok("list").command, Command::List);
    }

    #[test]
    fn rejects_bad_inputs() {
        let check = |line: &str, needle: &str| {
            let args: Vec<String> = line.split_whitespace().map(str::to_string).collect();
            let err = parse(&args).unwrap_err();
            assert!(err.contains(needle), "{err:?} missing {needle:?}");
        };
        check(
            "run --algorithm warp --family star --n 4",
            "unknown algorithm",
        );
        check("run --algorithm cd --family nope --n 4", "unknown family");
        check(
            "run --algorithm cd --family star",
            "missing required option --n",
        );
        check("run --algorithm cd --family star --n x", "invalid --n");
        check(
            "run --algorithm cd --family star --n 4 --loss 2",
            "outside [0, 1]",
        );
        check(
            "run --algorithm cd --family star --n 4 --dormancy 3",
            "outside [0, 1]",
        );
        check(
            "run --algorithm cd --family star --n 4 --crash-by 5",
            "requires --crashes",
        );
        check(
            "run --algorithm cd --family star --n 4 --dormancy-len 2",
            "require --dormancy",
        );
        check(
            "trace --algorithm cd --family star --n 4 --dormancy 0.5 --dormancy-len 0",
            "must be ≥ 1",
        );
        check("run --algorithm cd --family star --n 4 --trials 0", "≥ 1");
        check("frobnicate", "unknown subcommand");
        check("list --extra x", "takes no options");
        check(
            "run --algorithm cd --family star --n 4 --bogus 1",
            "unknown option",
        );
        check(
            "trace --algorithm cd --family star --n 4 --events warp",
            "unknown event kind",
        );
        check(
            "trace --algorithm cd --family star --n 4 --nodes 1,x",
            "invalid --nodes",
        );
        check(
            "trace --algorithm cd --family star --n 4 --from 9 --to 3",
            "below",
        );
        check(
            "trace --algorithm cd --family star --n 4 --bogus 1",
            "unknown option",
        );
    }

    #[test]
    fn algorithm_labels_roundtrip() {
        for (label, alg) in Algorithm::all() {
            assert_eq!(Algorithm::parse(label), Ok(alg));
            assert_eq!(alg.label(), label);
        }
    }

    #[test]
    fn parses_solve() {
        let cli = parse_ok(
            "solve --family plaw-3 --n 512 --seed 7 --mode pull --threads 4 \
             --out s.txt --verify",
        );
        match cli.command {
            Command::Solve(s) => {
                assert_eq!(s.family, Family::PowerLaw(3));
                assert_eq!(s.n, 512);
                assert_eq!(s.graph_path, None);
                assert_eq!(s.seed, 7);
                assert_eq!(s.mode, SolveMode::Pull);
                assert_eq!(s.threads, 4);
                assert_eq!(s.out.as_deref(), Some("s.txt"));
                assert!(s.verify);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn solve_defaults_to_auto_serial() {
        let cli = parse_ok("solve --family star --n 32");
        match cli.command {
            Command::Solve(s) => {
                assert_eq!(s.mode, SolveMode::Auto);
                assert_eq!(s.threads, 1);
                assert_eq!(s.seed, 0);
                assert_eq!(s.out, None);
                assert!(!s.verify);
            }
            other => panic!("{other:?}"),
        }
        let cli = parse_ok("solve --graph topo.txt --mode greedy");
        match cli.command {
            Command::Solve(s) => {
                assert_eq!(s.graph_path.as_deref(), Some("topo.txt"));
                assert_eq!(s.mode, SolveMode::Greedy);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_bad_solve_inputs() {
        let check = |line: &str, needle: &str| {
            let args: Vec<String> = line.split_whitespace().map(str::to_string).collect();
            let err = parse(&args).unwrap_err();
            assert!(err.contains(needle), "{err:?} missing {needle:?}");
        };
        check("solve --family star --n 4 --mode warp", "unknown mode");
        check(
            "solve --family star --n 4 --threads 0",
            "--threads must be ≥ 1",
        );
        check("solve --family star --n 4 --bogus 1", "unknown option");
        check("solve --n 4", "missing required option --family");
        check("solve --family star", "missing required option --n");
    }

    #[test]
    fn parses_bench_serve() {
        let cli = parse_ok(
            "bench-serve --clients 12 --jobs 3 --algorithm nocd --family path \
             --n 64 --seed 5 --trials 1 --cache-dir /tmp/c",
        );
        match cli.command {
            Command::BenchServe(b) => {
                assert_eq!(b.clients, 12);
                assert_eq!(b.jobs, 3);
                assert_eq!(b.algorithm, Algorithm::NoCd);
                assert_eq!(b.family, Family::Path);
                assert_eq!(b.n, 64);
                assert_eq!(b.seed, 5);
                assert_eq!(b.trials, 1);
                assert_eq!(b.cache_dir.as_deref(), Some("/tmp/c"));
                assert_eq!(b.addr, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bench_serve_defaults_to_eight_concurrent_clients() {
        let cli = parse_ok("bench-serve");
        match cli.command {
            Command::BenchServe(b) => {
                assert_eq!(b, BenchServeOpts::default());
                assert_eq!((b.clients, b.jobs), (8, 4));
            }
            other => panic!("{other:?}"),
        }
        let cli = parse_ok("bench-serve --addr 127.0.0.1:7700");
        match cli.command {
            Command::BenchServe(b) => assert_eq!(b.addr.as_deref(), Some("127.0.0.1:7700")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_bad_bench_serve_inputs() {
        let check = |line: &str, needle: &str| {
            let args: Vec<String> = line.split_whitespace().map(str::to_string).collect();
            let err = parse(&args).unwrap_err();
            assert!(err.contains(needle), "{err:?} missing {needle:?}");
        };
        check("bench-serve --clients 0", "must be ≥ 1");
        check("bench-serve --jobs 0", "must be ≥ 1");
        check("bench-serve --trials 0", "--trials must be ≥ 1");
        check("bench-serve --algorithm warp", "unknown algorithm");
        check("bench-serve --bogus 1", "unknown option");
    }

    #[test]
    fn solve_mode_labels_roundtrip() {
        for (label, mode) in SolveMode::all() {
            assert_eq!(SolveMode::parse(label), Ok(mode));
            assert_eq!(mode.label(), label);
        }
    }
}
