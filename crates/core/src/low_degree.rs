//! LowDegreeMIS (§4.2): a radio (no-CD) simulation of Ghaffari's MIS
//! algorithm, used as Algorithm 2's committed-subgraph subroutine and as
//! the Davies [PODC 2023]-style baseline for arbitrary graphs.
//!
//! Davies' algorithm simulates each round of Ghaffari's CONGEST MIS
//! [SODA 2016] with Decay-style backoff; the paper's §4.2 tightens the
//! Decay and degree-estimation subroutines to Θ(log Δ) width, giving
//! O(log²n·log Δ) rounds overall — O(log²n·loglog n) on the degree-O(log n)
//! subgraphs Algorithm 2 runs it on. Davies' pseudocode is not public, so
//! this is a faithful reconstruction of the *structure* (documented in
//! DESIGN.md): each simulated Ghaffari round has three fixed-length
//! sections:
//!
//! 1. **Mark exchange** — each active node marks itself with probability
//!    `p(v)` (its *desire level*). Marked nodes must discover whether a
//!    marked neighbor exists despite half-duplex radio: in each of
//!    `Θ(log n)` Decay iterations a marked node flips a fair coin to act as
//!    sender (one geometric-position transmission) or listener. A marked
//!    node that hears nothing through the section joins the MIS.
//! 2. **Notification** — MIS nodes announce themselves via `Θ(log n)`
//!    sender-backoff iterations; active nodes listen and leave as `out-MIS`
//!    when dominated.
//! 3. **Degree estimation** — Ghaffari's update needs to know whether the
//!    *effective degree* `d(v) = Σ_{active u ∈ N(v)} p(u)` is ≥ 2. Nodes
//!    probe at `Θ(log Δ)` scales: at scale `j`, every active node transmits
//!    with probability `p(v)·2⁻ʲ` (listening otherwise) for `Θ(log n)`
//!    trials; hearing succeeds when exactly one neighbor transmits, which
//!    happens with constant probability at the scale matching `log₂ d(v)`.
//!    Any sufficiently-hit scale `j ≥ 1` marks the degree as high (this is
//!    the multi-scale structure of Davies' `EstimateEffectiveDegree`, run
//!    for the paper's Θ(log Δ) outer iterations).
//!
//! Desire levels then follow Ghaffari's rule: halve `p` when `d̂ ≥ 2`, else
//! double it (capped to `[1/(4·d_max), 1/2]`).

use crate::backoff::capped_geometric;
use crate::params::LowDegreeParams;
use radio_netsim::{Action, Feedback, Message, NodeRng, NodeStatus, Protocol};
use rand::Rng;

/// Fraction of a scale's trials that must hear a message for the scale to
/// count as "active" in the degree estimate. Calibrated by the
/// `estimator_*` tests below.
const HIT_THRESHOLD: f64 = 0.15;

/// A node's state within a LowDegreeMIS instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LdStatus {
    Active,
    InMis,
    OutMis,
}

/// Which section of a simulated Ghaffari round a round falls in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Mark,
    Notify,
    Estimate,
}

/// Role of a marked node within one mark-exchange iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MarkRole {
    /// Transmit at this absolute round, sleep otherwise.
    SenderAt(u64),
    Listener,
}

/// One LowDegreeMIS instance occupying the fixed window
/// `[start, start + params.total_rounds())`.
///
/// This is a sub-protocol machine (compare [`crate::competition`]); the
/// standalone baseline wrapper is [`LowDegreeMis`].
#[derive(Debug, Clone)]
pub struct LowDegreeInstance {
    params: LowDegreeParams,
    start: u64,
    total: u64,
    w: u64,
    t_mark: u64,
    t_notify: u64,
    t_round: u64,
    trials: u64,
    status: LdStatus,
    /// Desire level p = 2^-desire_exp.
    desire_exp: u32,
    /// Current simulated Ghaffari round this node's flags refer to
    /// (`u64::MAX` before the first round is entered).
    cur_g: u64,
    marked: bool,
    heard_mark: bool,
    /// Whether the end-of-mark-section join decision has been applied for
    /// `cur_g`.
    mark_resolved: bool,
    /// Mark-section iteration state: (global iteration index, role).
    mark_iter: Option<(u64, MarkRole)>,
    /// Notify-section sender state: (global iteration index, transmit round).
    notify_iter: Option<(u64, u64)>,
    /// Per-scale hit counters for the estimate section of `cur_g`.
    hits: Vec<u32>,
    /// Set if the node reached the end of the window undecided and took the
    /// arbitrary timeout decision.
    timed_out: bool,
}

impl LowDegreeInstance {
    /// Creates an instance starting at absolute round `start`.
    pub fn new(start: u64, params: LowDegreeParams) -> LowDegreeInstance {
        LowDegreeInstance {
            start,
            total: params.total_rounds(),
            w: params.window() as u64,
            t_mark: params.t_mark(),
            t_notify: params.t_notify(),
            t_round: params.t_round(),
            trials: params.estimate_trials() as u64,
            status: LdStatus::Active,
            desire_exp: 1,
            cur_g: u64::MAX,
            marked: false,
            heard_mark: false,
            mark_resolved: false,
            mark_iter: None,
            notify_iter: None,
            hits: vec![0; params.estimate_scales() as usize],
            timed_out: false,
            params,
        }
    }

    /// First round of the window.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// One past the last round of the window.
    pub fn end(&self) -> u64 {
        self.start + self.total
    }

    /// Whether the window is over.
    pub fn is_done(&self, round: u64) -> bool {
        round >= self.end()
    }

    /// The node's decision, as a [`NodeStatus`]. `Undecided` until the node
    /// joins/leaves or the window ends.
    pub fn decision(&self) -> NodeStatus {
        match self.status {
            LdStatus::Active => NodeStatus::Undecided,
            LdStatus::InMis => NodeStatus::InMis,
            LdStatus::OutMis => NodeStatus::OutMis,
        }
    }

    /// Whether the node only decided by the end-of-window timeout rule
    /// (diagnostic; counted by the experiments).
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }

    /// Current desire-level exponent (p = 2^-exp); exposed for tests and
    /// experiments.
    pub fn desire_exp(&self) -> u32 {
        self.desire_exp
    }

    /// Locates a round: (ghaffari round, section, offset within section).
    fn locate(&self, round: u64) -> (u64, Section, u64) {
        debug_assert!(round >= self.start && round < self.end());
        let rel = round - self.start;
        let g = rel / self.t_round;
        let off = rel % self.t_round;
        if off < self.t_mark {
            (g, Section::Mark, off)
        } else if off < self.t_mark + self.t_notify {
            (g, Section::Notify, off - self.t_mark)
        } else {
            (g, Section::Estimate, off - self.t_mark - self.t_notify)
        }
    }

    /// Absolute round at which section `sec` of ghaffari round `g` starts.
    fn section_start(&self, g: u64, sec: Section) -> u64 {
        let base = self.start + g * self.t_round;
        match sec {
            Section::Mark => base,
            Section::Notify => base + self.t_mark,
            Section::Estimate => base + self.t_mark + self.t_notify,
        }
    }

    /// Brings per-round flags up to date for the round being acted in.
    fn sync(&mut self, g: u64, sec: Section, rng: &mut NodeRng) {
        if g != self.cur_g {
            self.enter_ghaffari_round(g, rng);
        }
        if sec != Section::Mark && !self.mark_resolved {
            self.resolve_mark();
        }
    }

    /// Applies the pending updates of the previous Ghaffari round and draws
    /// the new round's mark.
    fn enter_ghaffari_round(&mut self, g: u64, rng: &mut NodeRng) {
        if self.cur_g != u64::MAX && self.status == LdStatus::Active {
            if !self.mark_resolved {
                self.resolve_mark();
            }
            // Desire update from the previous round's estimate section (a
            // node that just joined keeps its exponent; irrelevant).
            if self.status == LdStatus::Active {
                self.apply_estimate();
            }
        }
        self.cur_g = g;
        self.heard_mark = false;
        self.mark_resolved = false;
        self.mark_iter = None;
        self.notify_iter = None;
        self.hits.iter_mut().for_each(|h| *h = 0);
        self.marked = if self.status == LdStatus::Active {
            let p = 0.5f64.powi(self.desire_exp as i32);
            rng.gen_bool(p)
        } else {
            false
        };
    }

    /// End-of-mark-section rule: a marked node that heard no marked
    /// neighbor joins the MIS.
    fn resolve_mark(&mut self) {
        self.mark_resolved = true;
        if self.status == LdStatus::Active && self.marked && !self.heard_mark {
            self.status = LdStatus::InMis;
        }
    }

    /// Ghaffari's desire update from the multi-scale hit counters: halve on
    /// d̂ ≥ 2, double otherwise.
    fn apply_estimate(&mut self) {
        let threshold = ((HIT_THRESHOLD * self.trials as f64).ceil() as u32).max(1);
        let high = self
            .hits
            .iter()
            .enumerate()
            .any(|(j, &h)| j >= 1 && h >= threshold);
        if high {
            self.desire_exp = (self.desire_exp + 1).min(self.params.min_desire_exp());
        } else {
            self.desire_exp = self.desire_exp.saturating_sub(1).max(1);
        }
    }

    /// Action for `round` (must be within the window).
    pub fn act(&mut self, round: u64, rng: &mut NodeRng) -> Action {
        let (g, sec, off) = self.locate(round);
        self.sync(g, sec, rng);
        match self.status {
            LdStatus::OutMis => Action::Sleep {
                wake_at: self.end(),
            },
            LdStatus::InMis => self.act_in_mis(round, g, sec, rng),
            LdStatus::Active => self.act_active(round, g, sec, off, rng),
        }
    }

    /// MIS nodes: announce in every Notify section, sleep otherwise.
    fn act_in_mis(&mut self, round: u64, g: u64, sec: Section, rng: &mut NodeRng) -> Action {
        match sec {
            Section::Mark | Section::Estimate => {
                let next = if sec == Section::Mark {
                    self.section_start(g, Section::Notify)
                } else {
                    self.section_start(g + 1, Section::Notify)
                };
                Action::Sleep {
                    wake_at: next.min(self.end()),
                }
            }
            Section::Notify => self.act_notify_sender(round, g, rng),
        }
    }

    /// One-transmission-per-iteration announcing within a Notify section.
    fn act_notify_sender(&mut self, round: u64, g: u64, rng: &mut NodeRng) -> Action {
        let sec_start = self.section_start(g, Section::Notify);
        let sec_end = self.section_start(g, Section::Estimate);
        let iter = (round - sec_start) / self.w;
        let global_iter = g * self.params.notify_iterations() as u64 + iter;
        let iter_start = sec_start + iter * self.w;
        let (gi, tx) = match self.notify_iter {
            Some(pair) if pair.0 == global_iter => pair,
            _ => {
                let x = capped_geometric(rng, self.w as u32) as u64;
                let pair = (global_iter, iter_start + x - 1);
                self.notify_iter = Some(pair);
                pair
            }
        };
        debug_assert_eq!(gi, global_iter);
        if round < tx {
            Action::Sleep { wake_at: tx }
        } else if round == tx {
            Action::Transmit(Message::unary())
        } else {
            let next = iter_start + self.w;
            if next >= sec_end {
                let nn = self.section_start(g + 1, Section::Notify);
                Action::Sleep {
                    wake_at: nn.min(self.end()),
                }
            } else {
                Action::Sleep { wake_at: next }
            }
        }
    }

    /// Active nodes: mark exchange / listen for MIS / degree probes.
    fn act_active(
        &mut self,
        round: u64,
        g: u64,
        sec: Section,
        off: u64,
        rng: &mut NodeRng,
    ) -> Action {
        match sec {
            Section::Mark => {
                if !self.marked || self.heard_mark {
                    // Unmarked nodes (and marked nodes that already lost)
                    // skip the rest of the section.
                    return Action::Sleep {
                        wake_at: self.section_start(g, Section::Notify),
                    };
                }
                let iter = off / self.w;
                let global_iter = g * self.params.mark_iterations() as u64 + iter;
                let iter_start = self.section_start(g, Section::Mark) + iter * self.w;
                let role = match self.mark_iter {
                    Some((gi, role)) if gi == global_iter => role,
                    _ => {
                        let role = if rng.gen_bool(0.5) {
                            let x = capped_geometric(rng, self.w as u32) as u64;
                            MarkRole::SenderAt(iter_start + x - 1)
                        } else {
                            MarkRole::Listener
                        };
                        self.mark_iter = Some((global_iter, role));
                        role
                    }
                };
                match role {
                    MarkRole::Listener => Action::Listen,
                    MarkRole::SenderAt(tx) => {
                        if round < tx {
                            Action::Sleep { wake_at: tx }
                        } else if round == tx {
                            Action::Transmit(Message::unary())
                        } else {
                            let next = iter_start + self.w;
                            Action::Sleep {
                                wake_at: next.min(self.section_start(g, Section::Notify)),
                            }
                        }
                    }
                }
            }
            Section::Notify => Action::Listen,
            Section::Estimate => {
                let j = (off / self.trials) as i32;
                let q = 0.5f64.powi(self.desire_exp as i32 + j);
                if rng.gen_bool(q) {
                    Action::Transmit(Message::unary())
                } else {
                    Action::Listen
                }
            }
        }
    }

    /// Feedback for a round this machine acted in.
    pub fn feedback(&mut self, round: u64, fb: Feedback) {
        if self.status == LdStatus::OutMis {
            return;
        }
        let (_, sec, off) = self.locate(round);
        match sec {
            Section::Mark => {
                if fb.heard_activity() {
                    self.heard_mark = true;
                }
            }
            Section::Notify => {
                if self.status == LdStatus::Active && fb.heard_activity() {
                    // Dominated by an MIS neighbor.
                    self.status = LdStatus::OutMis;
                }
            }
            Section::Estimate => {
                if fb.heard_activity() {
                    let j = (off / self.trials) as usize;
                    if j < self.hits.len() {
                        self.hits[j] += 1;
                    }
                }
            }
        }
    }

    /// Applies the end-of-window timeout rule: an undecided node decides
    /// arbitrarily (joins — preserving maximality at a small independence
    /// risk, as in Theorem 10's thresholding remark). Call once the window
    /// is done.
    pub fn finalize(&mut self, round: u64) {
        debug_assert!(self.is_done(round));
        if self.status == LdStatus::Active {
            self.status = LdStatus::InMis;
            self.timed_out = true;
        }
    }

    #[cfg(test)]
    fn force_hits(&mut self, scale: usize, hits: u32) {
        self.hits[scale] = hits;
    }
}

/// Standalone LowDegreeMIS protocol: the §4.2 round-efficient no-CD MIS
/// baseline (Davies-style), runnable on arbitrary graphs with `d_max = Δ`.
#[derive(Debug, Clone)]
pub struct LowDegreeMis {
    instance: LowDegreeInstance,
    finished: bool,
}

impl LowDegreeMis {
    /// Creates a standalone LowDegreeMIS node.
    pub fn new(params: LowDegreeParams) -> LowDegreeMis {
        LowDegreeMis {
            instance: LowDegreeInstance::new(0, params),
            finished: false,
        }
    }

    /// The underlying instance (for experiment instrumentation).
    pub fn instance(&self) -> &LowDegreeInstance {
        &self.instance
    }
}

impl Protocol for LowDegreeMis {
    fn act(&mut self, round: u64, rng: &mut NodeRng) -> Action {
        if self.instance.is_done(round) {
            self.instance.finalize(round);
            self.finished = true;
            return Action::halt();
        }
        // Dominated nodes are done for good and can retire immediately.
        if self.instance.decision() == NodeStatus::OutMis {
            self.finished = true;
            return Action::halt();
        }
        self.instance.act(round, rng)
    }

    fn feedback(&mut self, round: u64, fb: Feedback, _rng: &mut NodeRng) {
        self.instance.feedback(round, fb);
    }

    fn status(&self) -> NodeStatus {
        self.instance.decision()
    }

    fn finished(&self) -> bool {
        self.finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_graphs::generators;
    use radio_netsim::{ChannelModel, SimConfig, Simulator};

    fn run_ld(g: &mis_graphs::Graph, d_max: usize, seed: u64) -> radio_netsim::RunReport {
        let params = LowDegreeParams::for_n((4 * g.len()).max(64), d_max);
        Simulator::new(g, SimConfig::new(ChannelModel::NoCd).with_seed(seed))
            .run(|_, _| LowDegreeMis::new(params))
    }

    #[test]
    fn isolated_node_joins() {
        let g = generators::empty(3);
        let report = run_ld(&g, 2, 1);
        assert!(report.is_correct_mis(&g), "{:?}", report.verify_mis(&g));
    }

    #[test]
    fn single_edge_breaks_tie() {
        let g = generators::path(2);
        for seed in 0..10 {
            let report = run_ld(&g, 2, seed);
            assert!(
                report.is_correct_mis(&g),
                "seed {seed}: {:?}",
                report.verify_mis(&g)
            );
        }
    }

    #[test]
    fn solves_low_degree_graphs() {
        for (g, d) in [
            (generators::path(40), 2),
            (generators::cycle(30), 2),
            (generators::grid2d(6, 6), 4),
            (generators::bounded_degree(60, 5, 3), 5),
        ] {
            let report = run_ld(&g, d.max(g.max_degree()), 7);
            assert!(
                report.is_correct_mis(&g),
                "failed on {g:?}: {:?}",
                report.verify_mis(&g)
            );
        }
    }

    #[test]
    fn solves_higher_degree_graphs() {
        for g in [
            generators::star(40),
            generators::clique(24),
            generators::gnp(64, 0.15, 5),
        ] {
            let report = run_ld(&g, g.max_degree(), 3);
            assert!(
                report.is_correct_mis(&g),
                "failed on {g:?}: {:?}",
                report.verify_mis(&g)
            );
        }
    }

    #[test]
    fn clique_has_exactly_one_mis_node() {
        let g = generators::clique(16);
        let report = run_ld(&g, 15, 2);
        assert!(report.is_correct_mis(&g));
        assert_eq!(report.mis_mask().iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn schedule_lengths_consistent() {
        let params = LowDegreeParams::for_n(256, 16);
        let inst = LowDegreeInstance::new(100, params);
        assert_eq!(inst.start(), 100);
        assert_eq!(inst.end(), 100 + params.total_rounds());
        assert!(!inst.is_done(100));
        assert!(inst.is_done(inst.end()));
    }

    #[test]
    fn timeout_rule_joins() {
        let params = LowDegreeParams::for_n(64, 4);
        let mut inst = LowDegreeInstance::new(0, params);
        assert_eq!(inst.decision(), NodeStatus::Undecided);
        inst.finalize(inst.end());
        assert_eq!(inst.decision(), NodeStatus::InMis);
        assert!(inst.timed_out());
    }

    #[test]
    fn rounds_bounded_by_schedule() {
        let g = generators::path(10);
        let report = run_ld(&g, 2, 4);
        let params = LowDegreeParams::for_n(64, 2);
        assert!(report.rounds <= params.total_rounds() + 1);
    }

    #[test]
    fn estimator_rule_direction() {
        // apply_estimate must halve p when a j ≥ 1 scale is hot and double
        // it when only scale 0 (or nothing) is.
        let params = LowDegreeParams::for_n(256, 32);
        let trials = params.estimate_trials();
        let mut inst = LowDegreeInstance::new(0, params);
        inst.force_hits(2, trials);
        inst.apply_estimate();
        assert_eq!(inst.desire_exp(), 2, "high degree must halve p");
        let mut inst = LowDegreeInstance::new(0, params);
        inst.desire_exp = 3;
        inst.force_hits(0, trials);
        inst.apply_estimate();
        assert_eq!(inst.desire_exp(), 2, "low degree must double p");
        let mut inst = LowDegreeInstance::new(0, params);
        inst.apply_estimate();
        assert_eq!(inst.desire_exp(), 1, "exponent floors at 1");
    }

    #[test]
    fn energy_scales_with_degree_bound() {
        // Same graph, same seed: a smaller d_max bound yields shorter
        // windows and thus less energy.
        let g = generators::cycle(40);
        let small = run_ld(&g, 2, 6);
        let large = run_ld(&g, 512, 6);
        assert!(small.is_correct_mis(&g));
        assert!(large.is_correct_mis(&g));
        assert!(
            small.max_energy() < large.max_energy(),
            "small-Δ {} !< large-Δ {}",
            small.max_energy(),
            large.max_energy()
        );
    }
}
