//! Thin binary shell around the `mis-cli` library.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match mis_cli::args::parse(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", mis_cli::args::USAGE);
            std::process::exit(2);
        }
    };
    match mis_cli::execute(&cli) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
