//! E1 — Theorem 1: the Ω(log n) energy lower bound.
//!
//! Two sweeps over the energy budget `b` on the hard instance (n/4 disjoint
//! edges + n/2 isolated nodes):
//!
//! 1. the proof's strategy model ([`RandomStrategy`]): failure = some
//!    matched pair where neither endpoint heard the other (both join),
//!    compared against the closed-form floor 1 − e^(−n/4^(b+1));
//! 2. Algorithm 1 truncated at `b` awake rounds ([`EnergyCapped`]):
//!    failure = output is not an MIS.
//!
//! Both must show failure ≈ 1 for b ≪ ½·log₂ n and ≈ 0 once b = Θ(log n).

use crate::harness::{pct, ExpConfig, ExperimentOutput, Section};
use crate::orchestrator::{Orchestrator, UnitKey};
use mis_graphs::generators;
use mis_stats::{table::fmt_num, LineChart, Table};
use radio_mis::cd::CdMis;
use radio_mis::lower_bound::{
    some_pair_both_joined, theorem1_failure_floor, EnergyCapped, RandomStrategy,
};
use radio_mis::params::CdParams;
use radio_netsim::{split_seed, ChannelModel, SimConfig, Simulator};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Cached value of one budget cell: failure count plus simulated cost.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BudgetCell {
    failures: usize,
    cost: u64,
}

/// Runs E1.
pub fn run(cfg: &ExpConfig, orch: &Orchestrator) -> ExperimentOutput {
    let n = if cfg.quick { 256 } else { 4096 };
    let trials = cfg.trials(60);
    let g = generators::lower_bound_family(n);
    let pairs = n / 4;
    let log_n = (n as f64).log2();
    let budgets: Vec<u64> = (0..=(2.5 * log_n) as u64).step_by(2).collect();

    // Part 1: strategy model.
    let mut strategy_table = Table::new(["b", "measured both-join rate", "Thm 1 floor"]);
    let mut strategy_threshold: Option<u64> = None;
    let mut strategy_curve = Vec::new();
    for &b in &budgets {
        let key = UnitKey::new("e1", format!("strategy/b={b}"))
            .with("graph", format!("lower-bound/n={n}"))
            .with("model", "RandomStrategy(0.5)")
            .with("channel", "Cd")
            .with("seed", cfg.seed)
            .with("trials", trials);
        let cell = orch.unit_with_cost(
            &key,
            || {
                let per_trial: Vec<(bool, u64)> = (0..trials)
                    .into_par_iter()
                    .map(|t| {
                        let seed = split_seed(cfg.seed, (b << 20) ^ t as u64);
                        let report =
                            Simulator::new(&g, SimConfig::new(ChannelModel::Cd).with_seed(seed))
                                .run(|_, _| RandomStrategy::new(b, 0.5));
                        let cost: u64 = report.meters.iter().map(|m| m.energy()).sum();
                        (some_pair_both_joined(&report.statuses, pairs), cost)
                    })
                    .collect();
                BudgetCell {
                    failures: per_trial.iter().filter(|r| r.0).count(),
                    cost: per_trial.iter().map(|r| r.1).sum(),
                }
            },
            |c| c.cost,
        );
        let failures = cell.failures;
        let rate = failures as f64 / trials as f64;
        strategy_curve.push((b as f64, rate));
        if rate < 0.5 && strategy_threshold.is_none() {
            strategy_threshold = Some(b);
        }
        strategy_table.push_row([
            b.to_string(),
            pct(failures, trials),
            fmt_num(theorem1_failure_floor(n, b)),
        ]);
    }

    // Part 2: energy-capped Algorithm 1.
    let params = CdParams::for_n(n);
    let mut capped_table = Table::new(["b", "MIS failure rate"]);
    let mut capped_threshold: Option<u64> = None;
    let mut capped_curve = Vec::new();
    for &b in &budgets {
        let key = UnitKey::new("e1", format!("capped/b={b}"))
            .with("graph", format!("lower-bound/n={n}"))
            .with("model", "EnergyCapped(CdMis)")
            .with("params", format!("{params:?}"))
            .with("channel", "Cd")
            .with("seed", cfg.seed ^ 0xA5)
            .with("trials", trials);
        let cell = orch.unit_with_cost(
            &key,
            || {
                let per_trial: Vec<(bool, u64)> = (0..trials)
                    .into_par_iter()
                    .map(|t| {
                        let seed = split_seed(cfg.seed ^ 0xA5, (b << 20) ^ t as u64);
                        let report =
                            Simulator::new(&g, SimConfig::new(ChannelModel::Cd).with_seed(seed))
                                .run(|_, _| EnergyCapped::new(CdMis::new(params), b));
                        let cost: u64 = report.meters.iter().map(|m| m.energy()).sum();
                        (!report.is_correct_mis(&g), cost)
                    })
                    .collect();
                BudgetCell {
                    failures: per_trial.iter().filter(|r| r.0).count(),
                    cost: per_trial.iter().map(|r| r.1).sum(),
                }
            },
            |c| c.cost,
        );
        let failures = cell.failures;
        let rate = failures as f64 / trials as f64;
        capped_curve.push((b as f64, rate));
        if rate < 0.5 && capped_threshold.is_none() {
            capped_threshold = Some(b);
        }
        capped_table.push_row([b.to_string(), pct(failures, trials)]);
    }

    let mut findings = vec![format!(
        "hard instance n = {n} (½·log₂ n = {:.1}); {trials} trials per budget",
        log_n / 2.0
    )];
    if let Some(b) = strategy_threshold {
        findings.push(format!(
            "strategy model: the measured both-join rate dominates the Theorem-1 floor \
             at every budget (the floor bounds the *best possible* strategy; the i.i.d. \
             strategy is weaker) and first drops below 50% at b = {b} ≥ ½·log₂ n = {:.1} \
             — Θ(log n) energy is necessary",
            log_n / 2.0
        ));
    } else {
        findings.push("strategy model: failure stayed ≥ 50% over the whole sweep".into());
    }
    if let Some(b) = capped_threshold {
        findings.push(format!(
            "energy-capped Algorithm 1 starts succeeding at b = {b}, consistent \
             with its O(log n) energy upper bound"
        ));
    }

    let mut chart = LineChart::new(
        "Theorem 1: failure probability vs energy budget b",
        "awake-round budget b",
        "failure probability",
    );
    chart.push_series("i.i.d. strategy (both-join)", strategy_curve);
    chart.push_series("energy-capped Algorithm 1", capped_curve);
    chart.push_series(
        "Thm 1 floor (best strategy)",
        budgets
            .iter()
            .map(|&b| (b as f64, theorem1_failure_floor(n, b))),
    );

    ExperimentOutput {
        id: "e1",
        title: "energy lower bound on the hard instance".into(),
        claim: "Theorem 1: any MIS algorithm succeeding w.p. > e^(-1/4) must be awake \
                ≥ ½·log₂ n rounds; on the matching+isolated family, budget-b strategies \
                leave some pair mutually unheard w.p. ≥ 1 − e^(−n/4^(b+1))."
            .into(),
        sections: vec![
            Section {
                caption: "Strategy model: both-join failure vs energy budget b".into(),
                table: strategy_table,
            },
            Section {
                caption: "Algorithm 1 truncated at b awake rounds".into(),
                table: capped_table,
            },
        ],
        findings,
        charts: vec![("e1_failure_vs_budget".into(), chart)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shows_threshold() {
        let out = run(&ExpConfig::quick(3), &Orchestrator::ephemeral());
        assert_eq!(out.id, "e1");
        assert_eq!(out.sections.len(), 2);
        assert!(!out.sections[0].table.is_empty());
        // The findings mention a threshold (budgets reach 2.5·log n, far
        // past the ½·log n bound).
        assert!(out
            .findings
            .iter()
            .any(|f| f.contains("drops below") || f.contains("stayed")));
    }
}
