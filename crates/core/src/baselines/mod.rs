//! Baseline algorithms the paper compares against (§1.3).
//!
//! - [`luby_cd_naive`]: the "somewhat straightforward implementation of
//!   Luby for radio networks" in the CD model — O(log²n) energy and rounds
//!   (no early sleeping);
//! - [`nocd_naive`]: the straightforward no-CD simulation — each CD round
//!   is emulated with a full traditional backoff in which every node stays
//!   awake, giving ≈ O(log⁴n) energy and rounds.

pub mod luby_cd_naive;
pub mod nocd_naive;

pub use luby_cd_naive::naive_luby_cd;
pub use nocd_naive::{NaiveSimParams, NoCdNaive};
