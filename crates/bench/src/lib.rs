//! Shared fixtures for the criterion benchmarks.
//!
//! Each bench target corresponds to an experiment family of `DESIGN.md`
//! §4: it times the simulator runs that experiment performs, so regressions
//! in the engine or the protocol machines show up as bench regressions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mis_graphs::{generators, Graph};

/// The standard benchmark workload: G(n, p) with average degree 8.
pub fn workload(n: usize, seed: u64) -> Graph {
    let p = if n <= 1 {
        0.0
    } else {
        (8.0 / (n as f64 - 1.0)).min(1.0)
    };
    generators::gnp(n, p, seed)
}

/// The Theorem-1 hard instance at size `n`.
pub fn hard_instance(n: usize) -> Graph {
    generators::lower_bound_family(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_shape() {
        let g = workload(512, 1);
        assert_eq!(g.len(), 512);
        assert!(g.avg_degree() > 4.0 && g.avg_degree() < 12.0);
        assert_eq!(hard_instance(64).edge_count(), 16);
    }
}
