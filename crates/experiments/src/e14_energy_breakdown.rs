//! E14 — the paper's Figure 2, measured: where Algorithm 2's energy goes.
//!
//! Figure 2 color-codes the flowchart by per-component energy:
//! O(log²n·loglog n) for LowDegreeMIS, O(log n·log Δ) for the competition,
//! O(log n) for the announcement backoffs, O(log Δ) for the shallow check.
//! The instrumented runs attribute every awake round to its component and
//! check the ordering — LowDegreeMIS and the competition must dominate,
//! the shallow checks must be marginal.

use crate::harness::{run_nocd_instrumented, ExpConfig, ExperimentOutput, Section};
use crate::orchestrator::{Orchestrator, UnitKey};
use mis_graphs::generators::Family;
use mis_stats::table::fmt_num;
use mis_stats::{LineChart, Summary, Table};
use radio_mis::nocd::EnergyBreakdown;
use radio_mis::params::NoCdParams;
use radio_netsim::split_seed;
use serde::{Deserialize, Serialize};

/// Cached value of one size cell: trial-averaged per-component energy of
/// the max-energy node.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BreakdownCell {
    agg: [f64; 5],
    total_max: f64,
    cost: u64,
}

/// Mean of one component across nodes (max-energy nodes dominate the
/// claim, so we track both mean and the breakdown of the argmax node).
fn component_stats(
    breakdowns: &[EnergyBreakdown],
    pick: impl Fn(&EnergyBreakdown) -> u64,
) -> (f64, u64) {
    let values: Vec<f64> = breakdowns.iter().map(|b| pick(b) as f64).collect();
    let max_node = breakdowns
        .iter()
        .enumerate()
        .max_by_key(|(_, b)| b.total())
        .map(|(i, _)| i)
        .unwrap_or(0);
    (Summary::of(&values).mean, pick(&breakdowns[max_node]))
}

/// Runs E14.
pub fn run(cfg: &ExpConfig, orch: &Orchestrator) -> ExperimentOutput {
    let ns = cfg.ns(6, if cfg.quick { 8 } else { 11 });
    let trials = cfg.trials(6);
    let mut table = Table::new([
        "n",
        "competition",
        "deep checks",
        "LowDegreeMIS",
        "shallow checks",
        "announcements",
        "total (max node)",
    ]);
    let mut curve: Vec<(String, Vec<(f64, f64)>)> = [
        "competition",
        "deep checks",
        "LowDegreeMIS",
        "shallow checks",
        "announcements",
    ]
    .iter()
    .map(|&l| (l.to_string(), Vec::new()))
    .collect();
    let mut ld_dominates = true;
    let mut shallow_marginal = true;
    for &n in &ns {
        let g = Family::GnpAvgDegree(8).generate(n, cfg.seed ^ n as u64);
        let params = NoCdParams::for_n(n, g.max_degree().max(2));
        let cell = orch.unit_with_cost(
            &UnitKey::new("e14", format!("n={n}"))
                .with(
                    "graph",
                    format!(
                        "{}/seed={:#x}",
                        Family::GnpAvgDegree(8).label(),
                        cfg.seed ^ n as u64
                    ),
                )
                .with("n", n)
                .with("alg", "NoCdMis/instrumented")
                .with("params", format!("{params:?}"))
                .with("seed", cfg.seed ^ 0x14)
                .with("trials", trials),
            || {
                // Aggregate the max-energy node's breakdown across trials.
                let mut agg = [0f64; 5];
                let mut total_max = 0f64;
                let mut cost = 0u64;
                for t in 0..trials {
                    let seed = split_seed(cfg.seed ^ 0x14, ((n as u64) << 8) ^ t as u64);
                    let (report, inst) = run_nocd_instrumented(&g, params, seed);
                    cost += report.meters.iter().map(|m| m.energy()).sum::<u64>();
                    let picks: [fn(&EnergyBreakdown) -> u64; 5] = [
                        |b| b.competition,
                        |b| b.deep_checks,
                        |b| b.low_degree,
                        |b| b.shallow_checks,
                        |b| b.announcements,
                    ];
                    for (i, pick) in picks.iter().enumerate() {
                        let (_, at_max) = component_stats(&inst.breakdowns, pick);
                        agg[i] += at_max as f64 / trials as f64;
                    }
                    total_max += inst.breakdowns.iter().map(|b| b.total()).max().unwrap_or(0)
                        as f64
                        / trials as f64;
                }
                BreakdownCell {
                    agg,
                    total_max,
                    cost,
                }
            },
            |c| c.cost,
        );
        let agg = cell.agg;
        let total_max = cell.total_max;
        table.push_row([
            n.to_string(),
            fmt_num(agg[0]),
            fmt_num(agg[1]),
            fmt_num(agg[2]),
            fmt_num(agg[3]),
            fmt_num(agg[4]),
            fmt_num(total_max),
        ]);
        for (i, (_, pts)) in curve.iter_mut().enumerate() {
            pts.push((n as f64, agg[i].max(0.5)));
        }
        // Figure 2's ordering claims at the max-energy node.
        if agg[2] < agg[3] || agg[0] < agg[3] {
            ld_dominates = false;
        }
        if agg[3] > 0.15 * total_max {
            shallow_marginal = false;
        }
    }
    let mut chart = LineChart::new(
        "Algorithm 2 energy by component (max-energy node)",
        "n (log scale)",
        "awake rounds (log scale)",
    )
    .with_log_x()
    .with_log_y();
    for (label, pts) in curve {
        chart.push_series(label, pts);
    }

    ExperimentOutput {
        id: "e14",
        title: "Figure 2: Algorithm 2's energy, component by component".into(),
        claim: "Figure 2 (flowchart color coding): LowDegreeMIS costs \
                O(log²n·loglog n), the competition O(log n·log Δ) + commit-reduced \
                listens, announcements O(log n) per phase, the shallow check only \
                O(log Δ) — so the T_G window and the competition dominate a node's \
                energy while shallow checks stay marginal."
            .into(),
        sections: vec![Section {
            caption: format!(
                "per-component awake rounds of the max-energy node (gnp-d8, mean over \
                 {trials} trials)"
            ),
            table,
        }],
        findings: vec![
            if ld_dominates {
                "LowDegreeMIS and the competition dominate the max node's energy at every \
                 n — matching Figure 2's big-O ordering"
                    .to_string()
            } else {
                "WARNING: component ordering deviated from Figure 2 at some n".to_string()
            },
            if shallow_marginal {
                "shallow checks stay ≤ 15% of the max node's energy — the §5.1.2 design \
                 does its job"
                    .to_string()
            } else {
                "WARNING: shallow checks exceeded 15% of the max node's energy".to_string()
            },
        ],
        charts: vec![("e14_energy_breakdown".into(), chart)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_matches_figure2_ordering() {
        let out = run(&ExpConfig::quick(37), &Orchestrator::ephemeral());
        assert!(!out.findings[0].contains("WARNING"), "{}", out.findings[0]);
        assert_eq!(out.charts.len(), 1);
    }
}
