//! E18 — the generic energy-conservation combinator over the algorithm zoo.
//!
//! [`Conserve`](radio_mis::Conserve) wraps any MIS protocol in the
//! Dani–Hayes epoch scheme (advertise slots + buffered slice replay,
//! docs/CONSERVE.md). Its costs are fully parameterized by the epoch
//! geometry `(A, W)`: the wrapper's round complexity is stretched by at
//! most `1 + A/W` plus one epoch of slack, and per-node awake time is
//! bounded by `(1 + A)×` the inner machine's — with hard per-epoch
//! ceilings enforced by the `energy_claims` harness. Two questions:
//!
//! - **zoo overhead** — for each member of the algorithm zoo (Luby-CD,
//!   the Decay-based no-CD baseline, LowDegreeMIS, the full no-CD stack),
//!   what do the measured round stretch and awake-slot overhead of the
//!   conserved run look like against the native run, and do the conserved
//!   runs still solve MIS?
//! - **geometry sweep** — at fixed algorithm (Luby-CD, the CD preset),
//!   how does the measured round stretch track the `1 + A/W` theory as
//!   the work slice W grows, and what happens to the energy overhead?
//!
//! The CD preset (`A = 1`, deterministic advertisement) is *lossless*:
//! the wrapper draws no randomness and the inner machines see the native
//! callback sequence, so decisions match the native run exactly — the
//! success column doubles as a regression gate on that theorem.

use crate::harness::{pct, ExpConfig, ExperimentOutput, Section};
use crate::orchestrator::{Orchestrator, TrialStats, UnitKey};
use mis_graphs::generators::Family;
use mis_graphs::Graph;
use mis_stats::{LineChart, Summary, Table};
use radio_mis::baselines::{NaiveSimParams, NoCdNaive};
use radio_mis::cd::CdMis;
use radio_mis::conserve::{Conserve, ConserveConfig};
use radio_mis::low_degree::LowDegreeMis;
use radio_mis::nocd::NoCdMis;
use radio_mis::params::{CdParams, LowDegreeParams, NoCdParams};
use radio_netsim::{split_seed, ChannelModel, NodeRng, Protocol, SimConfig};

fn mean(xs: &[f64]) -> f64 {
    Summary::of(xs).mean
}

/// One cached trial block of a (possibly wrapped) zoo member.
fn zoo_cell<P, F>(
    orch: &Orchestrator,
    cell_id: &str,
    graph_recipe: &str,
    g: &Graph,
    alg: &str,
    params_label: &str,
    model: ChannelModel,
    seed: u64,
    trials: usize,
    factory: F,
) -> TrialStats
where
    P: Protocol + Send,
    F: Fn(usize, &mut NodeRng) -> P + Sync,
{
    orch.trials(
        UnitKey::new("e18", cell_id)
            .with("graph", graph_recipe)
            .with("alg", alg)
            .with("params", params_label),
        g,
        SimConfig::new(model).with_seed(seed),
        trials,
        factory,
    )
}

/// Runs E18.
pub fn run(cfg: &ExpConfig, orch: &Orchestrator) -> ExperimentOutput {
    let n = if cfg.quick { 20 } else { 48 };
    let trials = cfg.trials(7);
    let g = Family::GnpAvgDegree(6).generate(n, cfg.seed ^ 0x18);
    let graph_recipe = format!(
        "{}/seed={:#x}",
        Family::GnpAvgDegree(6).label(),
        cfg.seed ^ 0x18
    );
    let delta = g.max_degree().max(2);

    // Axis 1: the zoo sweep. Each member runs native and under Conserve
    // with its channel model's preset, same trial seeds, so the ratio
    // columns compare like with like.
    let cd_params = CdParams::for_n(64);
    let naive_sim = NaiveSimParams::for_n(n, delta);
    let ld_params = LowDegreeParams::for_n(n, delta);
    let nocd_params = NoCdParams::for_n(n, delta);
    let cd_cfg = ConserveConfig::for_cd(16);
    let nocd_cfg = ConserveConfig::for_nocd(32);

    // Quick mode trims the two heavyweight no-CD members; the CI cell
    // still covers both presets (CD via Luby, no-CD via Decay).
    let run_full_zoo = !cfg.quick;
    let mut members: Vec<(&str, ChannelModel, ConserveConfig, TrialStats, TrialStats)> = Vec::new();
    {
        let seed = split_seed(cfg.seed ^ 0x80, 0);
        let native = zoo_cell(
            orch,
            "zoo/luby-cd/native",
            &graph_recipe,
            &g,
            "CdMis",
            &format!("{cd_params:?}"),
            ChannelModel::Cd,
            seed,
            trials,
            |_, _| CdMis::new(cd_params),
        );
        let conserved = zoo_cell(
            orch,
            "zoo/luby-cd/conserve",
            &graph_recipe,
            &g,
            "Conserve<CdMis>",
            &format!("{:?}/{}", cd_params, cd_cfg.label()),
            ChannelModel::Cd,
            seed,
            trials,
            move |_, _| Conserve::new(CdMis::new(cd_params), cd_cfg),
        );
        members.push(("Luby-CD", ChannelModel::Cd, cd_cfg, native, conserved));
    }
    {
        let seed = split_seed(cfg.seed ^ 0x80, 1);
        let native = zoo_cell(
            orch,
            "zoo/decay/native",
            &graph_recipe,
            &g,
            "NoCdNaive",
            &format!("{naive_sim:?}"),
            ChannelModel::NoCd,
            seed,
            trials,
            move |_, _| NoCdNaive::new(cd_params, naive_sim),
        );
        let conserved = zoo_cell(
            orch,
            "zoo/decay/conserve",
            &graph_recipe,
            &g,
            "Conserve<NoCdNaive>",
            &format!("{:?}/{}", naive_sim, nocd_cfg.label()),
            ChannelModel::NoCd,
            seed,
            trials,
            move |_, _| Conserve::new(NoCdNaive::new(cd_params, naive_sim), nocd_cfg),
        );
        members.push(("Decay", ChannelModel::NoCd, nocd_cfg, native, conserved));
    }
    if run_full_zoo {
        let seed = split_seed(cfg.seed ^ 0x80, 2);
        let native = zoo_cell(
            orch,
            "zoo/low-degree/native",
            &graph_recipe,
            &g,
            "LowDegreeMis",
            &format!("{ld_params:?}"),
            ChannelModel::NoCd,
            seed,
            trials,
            move |_, _| LowDegreeMis::new(ld_params),
        );
        let conserved = zoo_cell(
            orch,
            "zoo/low-degree/conserve",
            &graph_recipe,
            &g,
            "Conserve<LowDegreeMis>",
            &format!("{:?}/{}", ld_params, nocd_cfg.label()),
            ChannelModel::NoCd,
            seed,
            trials,
            move |_, _| Conserve::new(LowDegreeMis::new(ld_params), nocd_cfg),
        );
        members.push((
            "LowDegreeMIS",
            ChannelModel::NoCd,
            nocd_cfg,
            native,
            conserved,
        ));

        let seed = split_seed(cfg.seed ^ 0x80, 3);
        let native = zoo_cell(
            orch,
            "zoo/nocd/native",
            &graph_recipe,
            &g,
            "NoCdMis",
            &format!("{nocd_params:?}"),
            ChannelModel::NoCd,
            seed,
            trials,
            move |_, _| NoCdMis::new(nocd_params),
        );
        let conserved = zoo_cell(
            orch,
            "zoo/nocd/conserve",
            &graph_recipe,
            &g,
            "Conserve<NoCdMis>",
            &format!("{:?}/{}", nocd_params, nocd_cfg.label()),
            ChannelModel::NoCd,
            seed,
            trials,
            move |_, _| Conserve::new(NoCdMis::new(nocd_params), nocd_cfg),
        );
        members.push((
            "no-CD stack",
            ChannelModel::NoCd,
            nocd_cfg,
            native,
            conserved,
        ));
    }

    let mut zoo_table = Table::new([
        "algorithm",
        "preset",
        "success",
        "rounds",
        "rounds ×",
        "stretch bound",
        "energy(max)",
        "energy ×",
    ]);
    for (name, _, ccfg, native, conserved) in &members {
        let stretch = mean(&conserved.rounds) / mean(&native.rounds).max(1.0);
        let overhead = mean(&conserved.energies) / mean(&native.energies).max(1.0);
        // The geometric bound: the 1 + A/W dilation plus at most one
        // epoch of entry slack, normalized by the native length.
        let bound = 1.0
            + ccfg.adv_slots as f64 / ccfg.slice as f64
            + ccfg.epoch_len() as f64 / mean(&native.rounds).max(1.0);
        zoo_table.push_row([
            (*name).into(),
            ccfg.label(),
            pct(conserved.correct, conserved.attempted),
            format!("{:.0}", mean(&conserved.rounds)),
            format!("{stretch:.2}"),
            format!("{bound:.2}"),
            format!("{:.0}", mean(&conserved.energies)),
            format!("{overhead:.2}"),
        ]);
    }

    // Axis 2: the geometry sweep — Conserve<CdMis> at growing work slices.
    // Theory: round stretch → 1 + A/W (here A = 1), energy overhead → the
    // advertise slots amortize over more inner work per attended epoch.
    let slices: &[u64] = if cfg.quick { &[8, 32] } else { &[4, 16, 64] };
    let native_seed = split_seed(cfg.seed ^ 0x81, 0);
    let native_ref = zoo_cell(
        orch,
        "sweep/native",
        &graph_recipe,
        &g,
        "CdMis",
        &format!("{cd_params:?}"),
        ChannelModel::Cd,
        native_seed,
        trials,
        |_, _| CdMis::new(cd_params),
    );
    let base_rounds = mean(&native_ref.rounds).max(1.0);
    let base_energy = mean(&native_ref.energies).max(1.0);
    let mut sweep_table = Table::new([
        "slice W",
        "epoch len",
        "success",
        "rounds ×",
        "1 + A/W",
        "energy ×",
    ]);
    let mut measured = Vec::new();
    let mut theory = Vec::new();
    for &w in slices {
        let ccfg = ConserveConfig::for_cd(w);
        let stats = zoo_cell(
            orch,
            &format!("sweep/W={w}"),
            &graph_recipe,
            &g,
            "Conserve<CdMis>",
            &format!("{:?}/{}", cd_params, ccfg.label()),
            ChannelModel::Cd,
            native_seed,
            trials,
            move |_, _| Conserve::new(CdMis::new(cd_params), ccfg),
        );
        let stretch = mean(&stats.rounds) / base_rounds;
        let t = 1.0 + 1.0 / w as f64;
        sweep_table.push_row([
            w.to_string(),
            ccfg.epoch_len().to_string(),
            pct(stats.correct, stats.attempted),
            format!("{stretch:.2}"),
            format!("{t:.2}"),
            format!("{:.2}", mean(&stats.energies) / base_energy),
        ]);
        measured.push((w as f64, stretch));
        theory.push((w as f64, t));
    }
    let mut chart = LineChart::new(
        "round stretch vs work slice (Conserve<CdMis>, A = 1)",
        "slice W",
        "rounds / native rounds",
    );
    chart.push_series("measured", measured);
    chart.push_series("1 + A/W", theory);

    // Findings.
    let all_correct = members
        .iter()
        .all(|(_, _, _, _, c)| c.correct == c.attempted);
    let cd_member = &members[0];
    let cd_stretch = mean(&cd_member.4.rounds) / mean(&cd_member.3.rounds).max(1.0);
    let cd_overhead = mean(&cd_member.4.energies) / mean(&cd_member.3.energies).max(1.0);
    let findings = vec![
        format!(
            "every Conserve-wrapped zoo member solves MIS: {}",
            if all_correct {
                "yes — all trials of all members verified (the awake-slot ceilings \
                 themselves are enforced per node per epoch by tests/energy_claims.rs)"
            } else {
                "NO — at least one conserved trial failed (see success columns)"
            }
        ),
        format!(
            "Conserve<CdMis> ({}) stretches rounds by {:.2}× against the 1 + A/W + \
             slack bound, at an awake-slot overhead of {:.2}× (theorem bound: 1 + A = \
             {}×) — the CD preset is lossless, so the success column is also a \
             decision-equality gate",
            cd_member.2.label(),
            cd_stretch,
            cd_overhead,
            1 + cd_member.2.adv_slots,
        ),
        "the no-CD preset pays A = 8 advertise slots and probability-½ draws for \
         whp wake-up detection without collision detection: its energy overhead is \
         correspondingly larger and its guarantee is a verifier-correct MIS, not \
         native equality (docs/CONSERVE.md §limits)"
            .into(),
        "the geometry sweep tracks the 1 + A/W dilation: larger work slices amortize \
         the advertise window toward native round complexity, trading repair \
         granularity (a node sleeps through a whole slice it disclaimed) for stretch"
            .into(),
    ];

    ExperimentOutput {
        id: "e18",
        title: "generic energy conservation over the algorithm zoo".into(),
        claim: "Dani–Hayes-style generic energy conservation: any MIS protocol can \
                be run under an epoch-sliced advertise/work schedule that preserves \
                its decisions (exactly, under the CD preset) while bounding awake \
                slots per node per epoch, at a round stretch of 1 + A/W plus one \
                epoch of slack."
            .into(),
        sections: vec![
            Section {
                caption: format!(
                    "zoo overhead: native vs conserved (gnp-d6, n = {n}, {trials} trials)"
                ),
                table: zoo_table,
            },
            Section {
                caption: "geometry sweep: Conserve<CdMis> round stretch vs slice W".into(),
                table: sweep_table,
            },
        ],
        findings,
        charts: vec![("e18_stretch_sweep".into(), chart)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_measures_conserve_overhead() {
        let out = run(&ExpConfig::quick(18), &Orchestrator::ephemeral());
        assert_eq!(out.id, "e18");
        assert_eq!(out.sections.len(), 2);
        assert_eq!(out.charts.len(), 1);
        // Quick mode: 2 zoo members (Luby-CD + Decay), 2 sweep slices.
        assert_eq!(out.sections[0].table.len(), 2);
        assert_eq!(out.sections[1].table.len(), 2);
        assert!(
            out.findings.iter().any(|f| f.contains("yes — all trials")),
            "findings: {:?}",
            out.findings
        );
        assert!(
            out.findings.iter().any(|f| f.contains("lossless")),
            "findings: {:?}",
            out.findings
        );
    }
}
