//! Hot-path hygiene: the steady-state round loop must not allocate.
//!
//! The engine hoists all per-round scratch (`sleep_updates`, `listeners`,
//! `transmitters`, the wake schedule itself) to per-run buffers, so once a
//! run has warmed up, processing more rounds allocates nothing. This test
//! pins that property with a counting global allocator: a run 64× longer
//! than the baseline must perform (essentially) the same number of heap
//! allocations. A per-round `Vec::new()`-and-push regression shows up here
//! as thousands of extra counts.
//!
//! Kept to a single `#[test]` on purpose: the counter is process-global,
//! and a second concurrently-running test would pollute the deltas.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use mis_graphs::generators;
use radio_netsim::{
    Action, ChannelModel, EngineMode, Feedback, NodeRng, NodeStatus, Protocol, SimConfig, Simulator,
};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Sleeps exactly one round at a time until `until`, then halts. The
/// one-round naps defeat fast-forwarding, so the engine processes every
/// single round — the worst case for per-round scratch churn — and each
/// processed round pushes into `sleep_updates`, which is precisely the
/// buffer that used to be reallocated per round.
struct Metronome {
    until: u64,
    done: bool,
}

impl Protocol for Metronome {
    fn act(&mut self, round: u64, _rng: &mut NodeRng) -> Action {
        if round >= self.until {
            self.done = true;
            return Action::halt();
        }
        Action::Sleep { wake_at: round + 1 }
    }
    fn feedback(&mut self, _round: u64, _fb: Feedback, _rng: &mut NodeRng) {}
    fn status(&self) -> NodeStatus {
        NodeStatus::OutMis
    }
    fn finished(&self) -> bool {
        self.done
    }
}

fn allocs_for(mode: EngineMode, rounds: u64, threads: usize) -> usize {
    // 200 nodes: wide enough that the parallel engine's 64-node sharding
    // grain actually splits the per-round worklists across workers, so
    // the threaded leg exercises real `rayon::join` traffic rather than
    // the inline fallback loop.
    let g = generators::path(200);
    let config = SimConfig::new(ChannelModel::Cd)
        .with_seed(7)
        .with_engine_mode(mode)
        .with_threads(threads);
    let sim = Simulator::new(&g, config);
    let before = ALLOCS.load(Ordering::Relaxed);
    let report = sim.run(|_, _| Metronome {
        until: rounds,
        done: false,
    });
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(report.rounds, rounds + 1, "metronome must run all rounds");
    after - before
}

#[test]
fn steady_state_rounds_do_not_allocate() {
    for (mode, threads) in [
        (EngineMode::Sparse, 1),
        (EngineMode::Dense, 1),
        (EngineMode::Sparse, 2),
    ] {
        // Warm-up run so lazily-initialized runtime state (TLS, rng
        // tables, the leaked engine thread pool) doesn't charge the
        // baseline.
        let _ = allocs_for(mode, 16, threads);
        let short = allocs_for(mode, 64, threads);
        let long = allocs_for(mode, 4096, threads);
        // Setup/teardown allocations (report, meters, scratch capacity)
        // are round-count independent; allow a tiny slack for buffer
        // growth doublings and, on the threaded leg, work-stealing deque
        // jitter. A per-round allocation would add ~4000 here.
        let slack = if threads > 1 { 64 } else { 16 };
        assert!(
            long <= short + slack,
            "{mode:?} @ {threads} threads: round loop allocates per round \
             ({short} allocs for 64 rounds vs {long} for 4096)"
        );
    }
}
