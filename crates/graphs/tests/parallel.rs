//! Differential property tests for the parallel MIS solver and verifier.
//!
//! Three contracts, each checked against the sequential code as oracle:
//!
//! - `prio_mis` always emits a valid MIS, and both elimination sides
//!   agree with each other and with greedy over the descending
//!   `(priority, id)` order — the determinism theorem, executed;
//! - every thread count produces byte-identical masks and round counts;
//! - `verify_mis_par` returns *exactly* `mis::verify_mis`'s verdict —
//!   same `Ok`, same first violation — on valid and corrupted masks,
//!   and the induced (fault-aware) variants agree the same way.

use mis_graphs::{mis, parallel, rng, Graph, GraphBuilder};
use proptest::prelude::*;

/// Strategy producing an arbitrary small simple graph (the same corpus
/// shape as `tests/proptests.rs`).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..40).prop_flat_map(|n| {
        let edge = (0..n, 0..n).prop_filter("no self-loops", |(u, v)| u != v);
        proptest::collection::vec(edge, 0..(n * 3)).prop_map(move |edges| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in edges {
                b.add_edge(u, v).unwrap();
            }
            b.build()
        })
    })
}

/// A membership mask of the right length, mostly garbage — exactly what
/// the verifier differential needs (valid masks are a measure-zero
/// slice of this space, so corrupted inputs dominate).
fn arb_mask(n: usize) -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(any::<bool>(), n)
}

proptest! {
    #[test]
    fn prio_mis_is_mis(g in arb_graph(), seed in any::<u64>()) {
        let mask = parallel::prio_mis(&g, seed, 2);
        prop_assert!(mis::verify_mis(&g, &mask).is_ok());
    }

    #[test]
    fn prio_mis_matches_priority_greedy(g in arb_graph(), seed in any::<u64>()) {
        // The oracle: sequential greedy over nodes sorted by descending
        // (priority, id). Push, pull, and every thread count must land
        // on this exact set.
        let mut order: Vec<usize> = (0..g.len()).collect();
        order.sort_by_key(|&v| std::cmp::Reverse((rng::split_seed(seed, v as u64), v)));
        let oracle = mis::greedy_mis_in_order(&g, order.iter().copied());
        for elim in [parallel::Elimination::Push, parallel::Elimination::Pull] {
            for threads in [1usize, 2, 8] {
                let run = parallel::prio_mis_with(&g, seed, threads, elim);
                prop_assert_eq!(
                    &run.mask, &oracle,
                    "{:?} at {} threads diverged", elim, threads
                );
            }
        }
    }

    #[test]
    fn prio_mis_rounds_are_thread_invariant(g in arb_graph(), seed in any::<u64>()) {
        for elim in [parallel::Elimination::Push, parallel::Elimination::Pull] {
            let base = parallel::prio_mis_with(&g, seed, 1, elim);
            for threads in [2usize, 8] {
                let run = parallel::prio_mis_with(&g, seed, threads, elim);
                prop_assert_eq!(run.mask, base.mask.clone());
                prop_assert_eq!(run.rounds, base.rounds);
            }
        }
    }

    #[test]
    fn parallel_verifier_is_a_drop_in(
        (g, mask) in arb_graph().prop_flat_map(|g| {
            let n = g.len();
            (Just(g), arb_mask(n))
        })
    ) {
        // Exact verdict equality — including which violation is
        // reported first — on arbitrary (mostly invalid) masks.
        let oracle = mis::verify_mis(&g, &mask);
        for threads in [1usize, 2, 8] {
            prop_assert_eq!(parallel::verify_mis_par(&g, &mask, threads), oracle);
        }
    }

    #[test]
    fn parallel_verifier_accepts_what_it_should(g in arb_graph(), seed in any::<u64>()) {
        // On a known-valid mask the verdict is Ok; corrupt one cell and
        // the two verifiers must still agree exactly.
        let mut mask = parallel::prio_mis(&g, seed, 2);
        prop_assert_eq!(parallel::verify_mis_par(&g, &mask, 8), Ok(()));
        let flip = (seed as usize) % mask.len();
        mask[flip] = !mask[flip];
        let oracle = mis::verify_mis(&g, &mask);
        for threads in [1usize, 2, 8] {
            prop_assert_eq!(parallel::verify_mis_par(&g, &mask, threads), oracle);
        }
    }

    #[test]
    fn induced_parallel_verifier_is_a_drop_in(
        (g, mask, healthy) in arb_graph().prop_flat_map(|g| {
            let n = g.len();
            (Just(g), arb_mask(n), arb_mask(n))
        })
    ) {
        let oracle = mis::verify_mis_induced(&g, &mask, &healthy);
        for threads in [1usize, 2, 8] {
            prop_assert_eq!(
                parallel::verify_mis_induced_par(&g, &mask, &healthy, threads),
                oracle
            );
        }
    }

    #[test]
    fn wrong_length_is_wrong_length(g in arb_graph(), extra in 1usize..4) {
        let short = vec![true; g.len() - 1];
        let long = vec![false; g.len() + extra];
        for bad in [&short, &long] {
            let oracle = mis::verify_mis(&g, bad);
            prop_assert!(matches!(oracle, Err(mis_graphs::MisViolation::WrongLength { .. })));
            prop_assert_eq!(parallel::verify_mis_par(&g, bad, 4), oracle);
        }
    }
}
