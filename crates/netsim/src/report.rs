//! Run outcomes: statuses, energy ledgers, and verification helpers.

use crate::energy::EnergyMeter;
use crate::metrics::RoundMetrics;
use crate::model::{ChannelModel, NodeStatus};
use mis_graphs::{mis, Graph};
use serde::{Deserialize, Serialize};

/// The result of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Final status of every node.
    pub statuses: Vec<NodeStatus>,
    /// Per-node energy ledgers.
    pub meters: Vec<EnergyMeter>,
    /// Round complexity: rounds elapsed until the last node finished (or the
    /// cap, for incomplete runs).
    pub rounds: u64,
    /// Whether every node finished before `max_rounds`.
    pub completed: bool,
    /// Channel model the run used.
    pub channel: ChannelModel,
    /// Master seed of the run.
    pub seed: u64,
    /// Resolved RADIO-CONGEST message budget (bits).
    pub message_bits: u32,
    /// Per-round metrics timeline, one record per *processed* round.
    ///
    /// `None` unless the run was configured with
    /// [`SimConfig::with_round_metrics`](crate::SimConfig::with_round_metrics).
    /// Rounds in which every node slept are skipped by the engine and
    /// produce no record; see [`crate::metrics`] for the counting
    /// conventions.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub metrics: Option<Vec<RoundMetrics>>,
}

impl RunReport {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.statuses.len()
    }

    /// Whether the run had zero nodes.
    pub fn is_empty(&self) -> bool {
        self.statuses.is_empty()
    }

    /// The round-metrics timeline, if collected (empty slice otherwise).
    pub fn metrics_timeline(&self) -> &[RoundMetrics] {
        self.metrics.as_deref().unwrap_or(&[])
    }

    /// Membership mask of the computed set (`status == InMis`).
    pub fn mis_mask(&self) -> Vec<bool> {
        self.statuses
            .iter()
            .map(|&s| s == NodeStatus::InMis)
            .collect()
    }

    /// Energy complexity of the run: max awake rounds over all nodes.
    pub fn max_energy(&self) -> u64 {
        self.meters.iter().map(|m| m.energy()).max().unwrap_or(0)
    }

    /// Mean awake rounds per node (node-averaged awake complexity).
    pub fn avg_energy(&self) -> f64 {
        if self.meters.is_empty() {
            0.0
        } else {
            self.meters.iter().map(|m| m.energy()).sum::<u64>() as f64
                / self.meters.len() as f64
        }
    }

    /// Max transmit rounds over all nodes.
    pub fn max_transmissions(&self) -> u64 {
        self.meters
            .iter()
            .map(|m| m.transmit_rounds)
            .max()
            .unwrap_or(0)
    }

    /// Max listen rounds over all nodes.
    pub fn max_listens(&self) -> u64 {
        self.meters
            .iter()
            .map(|m| m.listen_rounds)
            .max()
            .unwrap_or(0)
    }

    /// Number of nodes still undecided at the end.
    pub fn undecided_count(&self) -> usize {
        self.statuses
            .iter()
            .filter(|s| !s.is_decided())
            .count()
    }

    /// Whether the run completed with every node decided and the output is
    /// a maximal independent set of `graph`.
    ///
    /// # Panics
    ///
    /// Panics if `graph` has a different node count than the run.
    pub fn is_correct_mis(&self, graph: &Graph) -> bool {
        assert_eq!(graph.len(), self.len(), "graph/run size mismatch");
        self.completed && self.undecided_count() == 0 && mis::is_mis(graph, &self.mis_mask())
    }

    /// Detailed verification: `Ok` iff [`RunReport::is_correct_mis`].
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first failure: an
    /// incomplete run, an undecided node, or an MIS violation.
    pub fn verify_mis(&self, graph: &Graph) -> Result<(), String> {
        if !self.completed {
            return Err(format!("run hit the round cap at {} rounds", self.rounds));
        }
        if let Some(v) = self.statuses.iter().position(|s| !s.is_decided()) {
            return Err(format!("node {v} finished undecided"));
        }
        mis::verify_mis(graph, &self.mis_mask()).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(statuses: Vec<NodeStatus>, energies: Vec<u64>) -> RunReport {
        RunReport {
            meters: energies
                .iter()
                .map(|&e| EnergyMeter {
                    transmit_rounds: e / 2,
                    listen_rounds: e - e / 2,
                    decided_at: Some(0),
                    finished_at: Some(0),
                })
                .collect(),
            statuses,
            rounds: 10,
            completed: true,
            channel: ChannelModel::Cd,
            seed: 0,
            message_bits: 16,
            metrics: None,
        }
    }

    #[test]
    fn summaries() {
        use NodeStatus::*;
        let r = report(vec![InMis, OutMis, InMis], vec![3, 7, 2]);
        assert_eq!(r.max_energy(), 7);
        assert!((r.avg_energy() - 4.0).abs() < 1e-12);
        assert_eq!(r.mis_mask(), vec![true, false, true]);
        assert_eq!(r.undecided_count(), 0);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn verify_against_graph() {
        use NodeStatus::*;
        let g = mis_graphs::generators::path(3);
        let good = report(vec![InMis, OutMis, InMis], vec![1, 1, 1]);
        assert!(good.is_correct_mis(&g));
        assert!(good.verify_mis(&g).is_ok());

        let bad = report(vec![InMis, InMis, OutMis], vec![1, 1, 1]);
        assert!(!bad.is_correct_mis(&g));
        assert!(bad.verify_mis(&g).unwrap_err().contains("adjacent"));

        let undecided = report(vec![InMis, OutMis, Undecided], vec![1, 1, 1]);
        assert!(!undecided.is_correct_mis(&g));
        assert!(undecided.verify_mis(&g).unwrap_err().contains("undecided"));

        let mut incomplete = good.clone();
        incomplete.completed = false;
        assert!(incomplete.verify_mis(&g).unwrap_err().contains("round cap"));
    }

    #[test]
    fn empty_report() {
        let r = report(vec![], vec![]);
        assert!(r.is_empty());
        assert_eq!(r.max_energy(), 0);
        assert_eq!(r.avg_energy(), 0.0);
    }

    #[test]
    fn serde_roundtrip() {
        use NodeStatus::*;
        let r = report(vec![InMis, OutMis], vec![2, 3]);
        let json = serde_json::to_string(&r).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
