//! `mis-sim verify`: check a claimed MIS against a topology.

use crate::args::VerifyOpts;
use mis_graphs::{io, mis};

/// Executes `mis-sim verify`. The set file holds one in-MIS node id per
/// line (blank lines and `#` comments ignored).
///
/// # Errors
///
/// Returns a message on IO/parse failures; a *failed verification* is a
/// successful command whose output describes the violation.
pub fn execute(opts: &VerifyOpts) -> Result<String, String> {
    let text = std::fs::read_to_string(&opts.graph)
        .map_err(|e| format!("cannot read {}: {e}", opts.graph))?;
    let g = io::from_text(&text).map_err(|e| format!("cannot parse {}: {e}", opts.graph))?;
    let set_text =
        std::fs::read_to_string(&opts.set).map_err(|e| format!("cannot read {}: {e}", opts.set))?;
    let mut mask = vec![false; g.len()];
    for (idx, raw) in set_text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let v: usize = line
            .parse()
            .map_err(|e| format!("{}:{}: invalid node id: {e}", opts.set, idx + 1))?;
        if v >= g.len() {
            return Err(format!(
                "{}:{}: node {v} out of range for a {}-node graph",
                opts.set,
                idx + 1,
                g.len()
            ));
        }
        mask[v] = true;
    }
    let size = mis::set_size(&mask);
    Ok(match mis::verify_mis(&g, &mask) {
        Ok(()) => format!("OK: {size} nodes form a maximal independent set\n"),
        Err(e) => format!("INVALID ({size} nodes): {e}\n"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_tmp(name: &str, content: &str) -> String {
        let dir = std::env::temp_dir().join("mis_cli_test_verify");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn accepts_valid_mis() {
        let g = mis_graphs::generators::path(5);
        let graph = write_tmp("p5.txt", &io::to_text(&g));
        let set = write_tmp("s1.txt", "# heads\n0\n2\n4\n");
        let out = execute(&VerifyOpts { graph, set }).unwrap();
        assert!(out.starts_with("OK"), "{out}");
    }

    #[test]
    fn reports_violations() {
        let g = mis_graphs::generators::path(5);
        let graph = write_tmp("p5b.txt", &io::to_text(&g));
        let set = write_tmp("s2.txt", "0\n1\n");
        let out = execute(&VerifyOpts { graph, set }).unwrap();
        assert!(out.starts_with("INVALID"), "{out}");
        assert!(out.contains("adjacent"));
    }

    #[test]
    fn rejects_out_of_range_ids() {
        let g = mis_graphs::generators::path(3);
        let graph = write_tmp("p3.txt", &io::to_text(&g));
        let set = write_tmp("s3.txt", "7\n");
        assert!(execute(&VerifyOpts { graph, set })
            .unwrap_err()
            .contains("out of range"));
    }
}
