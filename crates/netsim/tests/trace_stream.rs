//! Streaming-sink equivalence: frames delivered over [`ChannelTrace`] must
//! be byte-identical to the [`JsonlTrace`] file output of the same run.
//!
//! This is the contract the `mis-serve` daemon's `GET /jobs/:id/stream`
//! endpoint rests on: a client that concatenates the streamed frames holds
//! exactly the file `mis-sim trace --out` would have written for the same
//! (graph, config, protocol) triple — same events, same order, same bytes.
//! The suite drives real engine runs (quiet-span jumps, round metrics,
//! masks, a concurrent consumer) rather than hand-fed events, so the
//! engine→sink delivery path is covered end to end.

use mis_graphs::generators;
use radio_netsim::{
    Action, ChannelModel, ChannelTrace, EventKind, EventMask, Feedback, JsonlTrace, NodeRng,
    NodeStatus, Protocol, SimConfig, Simulator, TraceSink,
};
use rand::Rng;

/// A protocol with a bounded awake budget that naps randomly — enough
/// behavioural variety (transmits, listens, sleeps over quiet spans) to
/// touch every event kind without needing a real MIS algorithm.
struct Restless {
    awake_left: u32,
    done: bool,
}

impl Restless {
    fn new(budget: u32) -> Restless {
        Restless {
            awake_left: budget,
            done: false,
        }
    }
}

impl Protocol for Restless {
    fn act(&mut self, round: u64, rng: &mut NodeRng) -> Action {
        if self.awake_left == 0 {
            self.done = true;
            return Action::halt();
        }
        match rng.gen_range(0..4u8) {
            0 => Action::Sleep {
                wake_at: round + rng.gen_range(1..6),
            },
            1 => {
                self.awake_left -= 1;
                Action::Transmit(radio_netsim::Message::unary())
            }
            _ => {
                self.awake_left -= 1;
                Action::Listen
            }
        }
    }
    fn feedback(&mut self, _round: u64, _fb: Feedback, _rng: &mut NodeRng) {}
    fn status(&self) -> NodeStatus {
        NodeStatus::OutMis
    }
    fn finished(&self) -> bool {
        self.done
    }
}

fn config(seed: u64) -> SimConfig {
    SimConfig::new(ChannelModel::Cd)
        .with_seed(seed)
        .with_round_metrics()
}

/// The JsonlTrace reference bytes for one run.
fn jsonl_run(seed: u64, mask: EventMask) -> Vec<u8> {
    let g = generators::gnp(48, 0.08, 3);
    let mut sink = JsonlTrace::new(Vec::new()).with_mask(mask);
    Simulator::new(&g, config(seed)).run_traced(|_, _| Restless::new(6), &mut sink);
    sink.into_inner().unwrap()
}

/// The concatenated ChannelTrace frames for the same run, drained after
/// the run completes.
fn channel_run(seed: u64, mask: EventMask) -> (Vec<Vec<u8>>, u64) {
    let g = generators::gnp(48, 0.08, 3);
    let (sink, rx) = ChannelTrace::channel();
    let mut sink = sink.with_mask(mask);
    Simulator::new(&g, config(seed)).run_traced(|_, _| Restless::new(6), &mut sink);
    let sent = sink.frames_sent();
    drop(sink); // close the channel so the drain terminates
    (rx.iter().collect(), sent)
}

#[test]
fn channel_stream_is_byte_identical_to_jsonl_file() {
    for seed in [1u64, 7, 42] {
        let reference = jsonl_run(seed, EventMask::ALL);
        let (frames, sent) = channel_run(seed, EventMask::ALL);
        assert!(!reference.is_empty(), "seed {seed}: empty reference trace");
        assert_eq!(frames.len() as u64, sent);
        assert_eq!(
            frames.concat(),
            reference,
            "seed {seed}: streamed frames diverge from the JsonlTrace file"
        );
    }
}

#[test]
fn every_frame_is_one_complete_jsonl_line() {
    let (frames, _) = channel_run(11, EventMask::ALL);
    assert!(!frames.is_empty());
    for frame in &frames {
        assert_eq!(
            frame.iter().filter(|&&b| b == b'\n').count(),
            1,
            "frames must carry exactly one line"
        );
        assert_eq!(*frame.last().unwrap(), b'\n');
        // Each frame parses back as one TraceEvent.
        let line = std::str::from_utf8(&frame[..frame.len() - 1]).unwrap();
        let _: radio_netsim::TraceEvent = serde_json::from_str(line).unwrap();
    }
}

#[test]
fn masked_streams_agree_too() {
    let mask = EventMask::only([EventKind::Finished, EventKind::RoundMetrics]);
    let reference = jsonl_run(5, mask);
    let (frames, _) = channel_run(5, mask);
    assert!(!reference.is_empty());
    assert_eq!(frames.concat(), reference);
    let text = String::from_utf8(frames.concat()).unwrap();
    assert!(!text.contains("\"Acted\""), "mask leaked Acted events");
}

#[test]
fn live_consumer_sees_the_same_bytes() {
    // Drain concurrently while the simulation runs — the shape the serve
    // daemon uses (worker simulates, drainer forwards frames to clients).
    let reference = jsonl_run(9, EventMask::ALL);
    let g = generators::gnp(48, 0.08, 3);
    let (mut sink, rx) = ChannelTrace::channel();
    let drainer = std::thread::spawn(move || {
        let mut bytes = Vec::new();
        for frame in rx.iter() {
            bytes.extend_from_slice(&frame);
        }
        bytes
    });
    Simulator::new(&g, config(9)).run_traced(|_, _| Restless::new(6), &mut sink);
    drop(sink);
    let streamed = drainer.join().unwrap();
    assert_eq!(streamed, reference);
}

#[test]
fn dropped_receiver_never_fails_the_run() {
    let g = generators::gnp(32, 0.1, 2);
    let (sink, rx) = ChannelTrace::channel();
    drop(rx);
    let mut sink = sink;
    let report = Simulator::new(&g, config(4)).run_traced(|_, _| Restless::new(4), &mut sink);
    assert_eq!(sink.frames_sent(), 0);
    assert!(sink.dropped() > 0);
    assert_eq!(report.len(), g.len());
}
