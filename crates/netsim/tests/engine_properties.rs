//! Property-based tests of the round engine's conservation laws.

use mis_graphs::{Graph, GraphBuilder};
use proptest::prelude::*;
use radio_netsim::{
    Action, ChannelModel, Feedback, Message, NodeRng, NodeStatus, Protocol, SimConfig,
    Simulator, TraceEvent, VecTrace,
};
use rand::Rng;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..24).prop_flat_map(|n| {
        let edge = (0..n, 0..n).prop_filter("no loops", |(u, v)| u != v);
        proptest::collection::vec(edge, 0..(2 * n)).prop_map(move |edges| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in edges {
                b.add_edge(u, v).unwrap();
            }
            b.build()
        })
    })
}

/// A protocol that acts randomly for a bounded number of awake rounds.
struct Chaotic {
    awake_left: u32,
    done: bool,
}

impl Protocol for Chaotic {
    fn act(&mut self, round: u64, rng: &mut NodeRng) -> Action {
        if self.awake_left == 0 {
            self.done = true;
            return Action::halt();
        }
        match rng.gen_range(0..4u8) {
            0 => Action::Sleep {
                wake_at: round + rng.gen_range(1..5u64),
            },
            1 => {
                self.awake_left -= 1;
                Action::Transmit(Message::unary())
            }
            _ => {
                self.awake_left -= 1;
                Action::Listen
            }
        }
    }
    fn feedback(&mut self, _round: u64, _fb: Feedback, _rng: &mut NodeRng) {}
    fn status(&self) -> NodeStatus {
        NodeStatus::OutMis
    }
    fn finished(&self) -> bool {
        self.done
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Meters equal the traced action counts, and energy = tx + listen.
    #[test]
    fn meters_match_trace(g in arb_graph(), seed in any::<u64>(),
                          channel_pick in 0u8..3) {
        let channel = match channel_pick {
            0 => ChannelModel::Cd,
            1 => ChannelModel::NoCd,
            _ => ChannelModel::Beeping,
        };
        let mut trace = VecTrace::new();
        let report = Simulator::new(&g, SimConfig::new(channel).with_seed(seed))
            .run_traced(|_, _| Chaotic { awake_left: 12, done: false }, &mut trace);
        prop_assert!(report.completed);
        for v in 0..g.len() {
            let traced_awake = trace.awake_actions(v) as u64;
            prop_assert_eq!(report.meters[v].energy(), traced_awake);
            let traced_tx = trace
                .for_node(v)
                .filter(|e| matches!(e, TraceEvent::Acted { action: Action::Transmit(_), .. }))
                .count() as u64;
            prop_assert_eq!(report.meters[v].transmit_rounds, traced_tx);
            // Exactly 12 awake rounds were budgeted and all were used.
            prop_assert_eq!(report.meters[v].energy(), 12);
        }
    }

    /// Every feedback is consistent with the channel model: a CD node never
    /// sees Beep, a beeping node never sees Heard/Collision, a no-CD node
    /// never sees Collision/Beep.
    #[test]
    fn feedback_respects_channel(g in arb_graph(), seed in any::<u64>()) {
        for channel in [ChannelModel::Cd, ChannelModel::NoCd, ChannelModel::Beeping] {
            let mut trace = VecTrace::new();
            let _ = Simulator::new(&g, SimConfig::new(channel).with_seed(seed))
                .run_traced(|_, _| Chaotic { awake_left: 8, done: false }, &mut trace);
            for e in &trace.events {
                if let TraceEvent::Fed { feedback, .. } = e {
                    match channel {
                        ChannelModel::Cd => {
                            prop_assert!(!matches!(feedback, Feedback::Beep))
                        }
                        ChannelModel::NoCd => prop_assert!(!matches!(
                            feedback,
                            Feedback::Beep | Feedback::Collision
                        )),
                        ChannelModel::Beeping | ChannelModel::BeepingSenderCd => {
                            prop_assert!(!matches!(
                                feedback,
                                Feedback::Heard(_) | Feedback::Collision
                            ))
                        }
                    }
                }
            }
        }
    }

    /// Runs are reproducible and node-count invariants hold.
    #[test]
    fn reproducible_and_complete(g in arb_graph(), seed in any::<u64>()) {
        let run = || Simulator::new(&g, SimConfig::new(ChannelModel::NoCd).with_seed(seed))
            .run(|_, _| Chaotic { awake_left: 6, done: false });
        let a = run();
        let b = run();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), g.len());
        prop_assert!(a.completed);
        // Everyone finished and was stamped.
        for m in &a.meters {
            prop_assert!(m.finished_at.is_some());
            prop_assert!(m.energy() <= a.rounds);
        }
    }

    /// With loss = 1.0, nobody ever hears anything in any model.
    #[test]
    fn total_loss_silences_everything(g in arb_graph(), seed in any::<u64>()) {
        let mut trace = VecTrace::new();
        let config = SimConfig::new(ChannelModel::NoCd)
            .with_seed(seed)
            .with_loss_probability(1.0);
        let _ = Simulator::new(&g, config)
            .run_traced(|_, _| Chaotic { awake_left: 10, done: false }, &mut trace);
        for e in &trace.events {
            if let TraceEvent::Fed { feedback, .. } = e {
                prop_assert!(!matches!(feedback, Feedback::Heard(_)));
            }
        }
    }
}
