//! `mis-sim run`: execute an algorithm over trials and summarize.

use super::radio::{radio_channel, run_radio_resumable, run_radio_traced};
use crate::args::{Algorithm, RunOpts};
use congest_sim::{CongestSim, GhaffariCongest, LubyCongest};
use mis_graphs::{io, mis, Graph};
use mis_stats::table::fmt_num;
use mis_stats::{Summary, Table};
use radio_netsim::{split_seed, EngineMode, FaultPlan, NullTrace, RoundMetrics, SimConfig};
use serde::Serialize;
use std::io::Write as _;
use std::path::Path;

/// Per-trial record for the report.
#[derive(Debug, Clone, Serialize)]
struct TrialRow {
    trial: usize,
    seed: u64,
    correct: bool,
    mis_size: usize,
    energy_max: u64,
    energy_avg: f64,
    rounds: u64,
}

/// A trial that panicked or blew its budget during a `--resume` sweep.
#[derive(Debug, Clone, Serialize)]
struct FailureRow {
    trial: usize,
    seed: u64,
    panic: String,
}

/// Aggregated run report (serialized with `--json`).
#[derive(Debug, Clone, Serialize)]
struct RunSummary {
    algorithm: String,
    channel: String,
    graph_nodes: usize,
    graph_edges: usize,
    graph_max_degree: usize,
    trials: Vec<TrialRow>,
    /// Isolated trial failures (panics / budget violations) from a
    /// `--resume` sweep; summaries below cover the surviving trials only.
    #[serde(skip_serializing_if = "Vec::is_empty")]
    failures: Vec<FailureRow>,
    success_rate: f64,
    energy_max_mean: f64,
    energy_avg_mean: f64,
    rounds_mean: f64,
}

/// The channel model an algorithm runs under.
fn channel_of(alg: Algorithm) -> &'static str {
    match alg {
        Algorithm::Cd | Algorithm::NaiveLuby => "CD",
        Algorithm::Multichannel => "multichannel CD",
        Algorithm::Beeping => "beeping",
        Algorithm::BeepingNative => "beeping+senderCD",
        Algorithm::NoCd | Algorithm::LowDegree | Algorithm::NoCdNaive | Algorithm::UnknownDelta => {
            "no-CD"
        }
        Algorithm::CongestLuby | Algorithm::CongestGhaffari => "wired CONGEST",
    }
}

/// Runs one radio trial, returning (correct, mis_size, e_max, e_avg,
/// rounds) plus the round-metrics timeline when `collect_metrics` is set.
#[allow(clippy::too_many_arguments)]
fn radio_trial(
    g: &Graph,
    alg: Algorithm,
    seed: u64,
    faults: &FaultPlan,
    channels: u16,
    max_rounds: Option<u64>,
    paper: bool,
    conserve: bool,
    collect_metrics: bool,
    engine: EngineMode,
    threads: usize,
) -> Result<((bool, usize, u64, f64, u64), Vec<RoundMetrics>), String> {
    let channel = radio_channel(alg).expect("congest algorithms handled by caller");
    let mut config = SimConfig::new(channel)
        .with_seed(seed)
        .with_faults(faults.clone())
        .with_channels(channels)
        .with_engine_mode(engine)
        .with_threads(threads);
    if let Some(cap) = max_rounds {
        config = config.with_max_rounds(cap);
    }
    if collect_metrics {
        config = config.with_round_metrics();
    }
    let mut report = run_radio_traced(g, alg, config, paper, conserve, &mut NullTrace)?;
    let timeline = report.metrics.take().unwrap_or_default();
    Ok((
        (
            report.is_correct_mis(g),
            mis::set_size(&report.mis_mask()),
            report.max_energy(),
            report.avg_energy(),
            report.rounds,
        ),
        timeline,
    ))
}

/// One `--metrics` JSONL line: a round-metrics record tagged with its trial.
#[derive(Debug, Serialize)]
struct MetricsRow<'a> {
    trial: usize,
    #[serde(flatten)]
    metrics: &'a RoundMetrics,
}

fn write_metrics_jsonl(path: &str, timelines: &[(usize, Vec<RoundMetrics>)]) -> Result<(), String> {
    let file = std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    let mut w = std::io::BufWriter::new(file);
    let io_err = |e: std::io::Error| format!("cannot write {path}: {e}");
    for (trial, timeline) in timelines {
        for metrics in timeline {
            serde_json::to_writer(
                &mut w,
                &MetricsRow {
                    trial: *trial,
                    metrics,
                },
            )
            .map_err(|e| io_err(e.into()))?;
            w.write_all(b"\n").map_err(io_err)?;
        }
    }
    w.flush().map_err(io_err)
}

fn congest_trial(g: &Graph, alg: Algorithm, seed: u64) -> (bool, usize, u64, f64, u64) {
    let n_bound = g.len().max(2);
    let sim = CongestSim::new(g, seed);
    let report = match alg {
        Algorithm::CongestLuby => sim.run(|_, _| LubyCongest::new(n_bound)),
        Algorithm::CongestGhaffari => {
            sim.run(|_, _| GhaffariCongest::new(n_bound, g.max_degree().max(1)))
        }
        _ => unreachable!("radio algorithms handled elsewhere"),
    };
    (
        report.is_correct_mis(g),
        report.mis_mask().iter().filter(|&&b| b).count(),
        report.max_awake(),
        report.avg_awake(),
        report.rounds,
    )
}

/// Executes `mis-sim run`.
///
/// # Errors
///
/// Returns a message on graph-file IO/parsing failures.
pub fn execute(opts: &RunOpts) -> Result<String, String> {
    let graph = match &opts.graph_path {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            io::from_text(&text).map_err(|e| format!("cannot parse {path}: {e}"))?
        }
        None => opts.family.generate(opts.n, opts.seed),
    };
    let is_congest = matches!(
        opts.algorithm,
        Algorithm::CongestLuby | Algorithm::CongestGhaffari
    );
    if is_congest && !opts.faults.is_inert() {
        return Err("fault injection (--loss/--crashes/--jammers/--wake-window/--dormancy) applies only to radio algorithms".into());
    }
    if is_congest && opts.metrics.is_some() {
        return Err("--metrics applies only to radio algorithms".into());
    }
    if is_congest && opts.channels != 1 {
        return Err("--channels applies only to radio algorithms".into());
    }
    if is_congest && opts.resume.is_some() {
        return Err("--resume checkpointing applies only to radio algorithms".into());
    }
    if is_congest && opts.conserve {
        return Err("--conserve applies only to radio algorithms".into());
    }

    let mut rows = Vec::with_capacity(opts.trials);
    let mut failures: Vec<FailureRow> = Vec::new();
    let mut timelines: Vec<(usize, Vec<RoundMetrics>)> = Vec::new();
    if let Some(checkpoint) = &opts.resume {
        // Checkpointed sweep: finished trials append to the JSONL file as
        // they complete; trials already recorded there are merged, not
        // re-run. Panicking trials are isolated into `failures`.
        let channel = radio_channel(opts.algorithm).expect("congest rejected above");
        let mut config = SimConfig::new(channel)
            .with_seed(opts.seed)
            .with_faults(opts.faults.clone())
            .with_channels(opts.channels)
            .with_engine_mode(opts.engine)
            .with_threads(opts.threads);
        if let Some(cap) = opts.max_rounds {
            config = config.with_max_rounds(cap);
        }
        if opts.metrics.is_some() {
            config = config.with_round_metrics();
        }
        let set = run_radio_resumable(
            &graph,
            opts.algorithm,
            config,
            opts.paper_constants,
            opts.conserve,
            opts.trials,
            Path::new(checkpoint),
        )?;
        for mut o in set.outcomes {
            if opts.metrics.is_some() {
                timelines.push((o.trial, o.report.metrics.take().unwrap_or_default()));
            }
            rows.push(TrialRow {
                trial: o.trial,
                seed: o.seed,
                correct: o.correct,
                mis_size: mis::set_size(&o.report.mis_mask()),
                energy_max: o.report.max_energy(),
                energy_avg: o.report.avg_energy(),
                rounds: o.report.rounds,
            });
        }
        failures = set
            .failures
            .into_iter()
            .map(|f| FailureRow {
                trial: f.trial,
                seed: f.seed,
                panic: f.panic,
            })
            .collect();
    } else {
        for t in 0..opts.trials {
            let seed = split_seed(opts.seed, t as u64);
            let (correct, mis_size, emax, eavg, rounds) = match opts.algorithm {
                Algorithm::CongestLuby | Algorithm::CongestGhaffari => {
                    congest_trial(&graph, opts.algorithm, seed)
                }
                alg => {
                    let (row, timeline) = radio_trial(
                        &graph,
                        alg,
                        seed,
                        &opts.faults,
                        opts.channels,
                        opts.max_rounds,
                        opts.paper_constants,
                        opts.conserve,
                        opts.metrics.is_some(),
                        opts.engine,
                        opts.threads,
                    )?;
                    if opts.metrics.is_some() {
                        timelines.push((t, timeline));
                    }
                    row
                }
            };
            rows.push(TrialRow {
                trial: t,
                seed,
                correct,
                mis_size,
                energy_max: emax,
                energy_avg: eavg,
                rounds,
            });
        }
    }
    if let Some(path) = &opts.metrics {
        write_metrics_jsonl(path, &timelines)?;
    }
    let summary = RunSummary {
        algorithm: opts.algorithm.label().to_string(),
        channel: channel_of(opts.algorithm).to_string(),
        graph_nodes: graph.len(),
        graph_edges: graph.edge_count(),
        graph_max_degree: graph.max_degree(),
        success_rate: rows.iter().filter(|r| r.correct).count() as f64 / rows.len().max(1) as f64,
        energy_max_mean: Summary::of(&rows.iter().map(|r| r.energy_max as f64).collect::<Vec<_>>())
            .mean,
        energy_avg_mean: Summary::of(&rows.iter().map(|r| r.energy_avg).collect::<Vec<_>>()).mean,
        rounds_mean: Summary::of(&rows.iter().map(|r| r.rounds as f64).collect::<Vec<_>>()).mean,
        trials: rows,
        failures,
    };

    if opts.json {
        return serde_json::to_string_pretty(&summary).map_err(|e| e.to_string());
    }
    let mut out = format!(
        "{} ({} model) on {} nodes / {} edges (Δ = {})\n\n",
        summary.algorithm,
        summary.channel,
        summary.graph_nodes,
        summary.graph_edges,
        summary.graph_max_degree
    );
    let mut table = Table::new([
        "trial",
        "MIS?",
        "|MIS|",
        "energy(max)",
        "energy(avg)",
        "rounds",
    ]);
    for r in &summary.trials {
        table.push_row([
            r.trial.to_string(),
            if r.correct {
                "✓".into()
            } else {
                "✗".to_string()
            },
            r.mis_size.to_string(),
            r.energy_max.to_string(),
            fmt_num(r.energy_avg),
            r.rounds.to_string(),
        ]);
    }
    out.push_str(&table.to_markdown());
    out.push_str(&format!(
        "\nsuccess {:.0}%  ·  mean energy(max) {}  ·  mean energy(avg) {}  ·  mean rounds {}\n",
        100.0 * summary.success_rate,
        fmt_num(summary.energy_max_mean),
        fmt_num(summary.energy_avg_mean),
        fmt_num(summary.rounds_mean),
    ));
    if !summary.failures.is_empty() {
        out.push_str(&format!(
            "{} trial(s) failed and were isolated (summaries cover survivors):\n",
            summary.failures.len()
        ));
        for f in &summary.failures {
            out.push_str(&format!(
                "  trial {} (seed {}): {}\n",
                f.trial, f.seed, f.panic
            ));
        }
    }
    if let Some(path) = &opts.resume {
        out.push_str(&format!(
            "checkpoint: {} of {} trial(s) recorded in {path}\n",
            summary.trials.len() + summary.failures.len(),
            opts.trials
        ));
    }
    if let Some(path) = &opts.metrics {
        let records: usize = timelines.iter().map(|(_, t)| t.len()).sum();
        out.push_str(&format!("round metrics: {records} records → {path}\n"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::RunOpts;

    #[test]
    fn runs_cd_table_output() {
        let opts = RunOpts {
            n: 64,
            trials: 2,
            ..RunOpts::default()
        };
        let out = execute(&opts).unwrap();
        assert!(out.contains("cd (CD model)"));
        assert!(out.contains("success 100%"), "{out}");
    }

    #[test]
    fn runs_congest_json_output() {
        let opts = RunOpts {
            algorithm: Algorithm::CongestLuby,
            n: 64,
            trials: 2,
            json: true,
            ..RunOpts::default()
        };
        let out = execute(&opts).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(parsed["algorithm"], "congest-luby");
        assert_eq!(parsed["success_rate"], 1.0);
    }

    #[test]
    fn dense_engine_reproduces_the_sparse_json_report() {
        let base = RunOpts {
            n: 48,
            trials: 2,
            json: true,
            faults: FaultPlan::none().with_random_crashes(2, 16).with_loss(0.1),
            max_rounds: Some(100_000),
            ..RunOpts::default()
        };
        let sparse = execute(&base).unwrap();
        let dense = execute(&RunOpts {
            engine: EngineMode::Dense,
            ..base
        })
        .unwrap();
        assert_eq!(sparse, dense, "--engine must never change results");
    }

    #[test]
    fn threaded_run_reproduces_the_serial_json_report() {
        let base = RunOpts {
            n: 96,
            trials: 2,
            json: true,
            faults: FaultPlan::none().with_random_crashes(2, 16).with_loss(0.1),
            max_rounds: Some(100_000),
            ..RunOpts::default()
        };
        let serial = execute(&base).unwrap();
        let threaded = execute(&RunOpts { threads: 4, ..base }).unwrap();
        assert_eq!(serial, threaded, "--threads must never change results");
    }

    #[test]
    fn runs_multichannel_under_jamming() {
        let opts = RunOpts {
            algorithm: Algorithm::Multichannel,
            n: 48,
            trials: 1,
            channels: 2,
            faults: FaultPlan::none().with_adaptive_channel_jam(1),
            ..RunOpts::default()
        };
        let out = execute(&opts).unwrap();
        assert!(out.contains("multichannel CD model"), "{out}");
        assert!(out.contains("success 100%"), "{out}");
    }

    #[test]
    fn conserved_run_decides_a_correct_mis() {
        let opts = RunOpts {
            n: 64,
            trials: 2,
            conserve: true,
            ..RunOpts::default()
        };
        let out = execute(&opts).unwrap();
        assert!(out.contains("success 100%"), "{out}");
    }

    #[test]
    fn rejects_conserve_on_multichannel_and_congest() {
        let opts = RunOpts {
            algorithm: Algorithm::Multichannel,
            n: 16,
            trials: 1,
            channels: 2,
            conserve: true,
            ..RunOpts::default()
        };
        assert!(execute(&opts).unwrap_err().contains("--conserve"));
        let opts = RunOpts {
            algorithm: Algorithm::CongestLuby,
            conserve: true,
            ..RunOpts::default()
        };
        assert!(execute(&opts).unwrap_err().contains("--conserve"));
    }

    #[test]
    fn rejects_channels_on_congest() {
        let opts = RunOpts {
            algorithm: Algorithm::CongestLuby,
            channels: 2,
            ..RunOpts::default()
        };
        assert!(execute(&opts).unwrap_err().contains("radio"));
    }

    #[test]
    fn rejects_faults_on_congest() {
        let opts = RunOpts {
            algorithm: Algorithm::CongestLuby,
            faults: FaultPlan::none().with_loss(0.1),
            ..RunOpts::default()
        };
        assert!(execute(&opts).unwrap_err().contains("radio"));
        let opts = RunOpts {
            algorithm: Algorithm::CongestLuby,
            faults: FaultPlan::none().with_random_jammers(1),
            ..RunOpts::default()
        };
        assert!(execute(&opts).unwrap_err().contains("radio"));
    }

    #[test]
    fn faulty_run_degrades_but_executes() {
        // A heavy jammer load on a small clique-ish graph: the run must
        // execute end-to-end and report per-trial outcomes either way.
        let opts = RunOpts {
            n: 32,
            trials: 2,
            faults: FaultPlan::none().with_random_crashes(4, 16).with_loss(0.2),
            max_rounds: Some(100_000),
            ..RunOpts::default()
        };
        let out = execute(&opts).unwrap();
        assert!(out.contains("success"), "{out}");
    }

    #[test]
    fn loads_graph_from_file() {
        let dir = std::env::temp_dir().join("mis_cli_test_run");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        let g = mis_graphs::generators::path(6);
        std::fs::write(&path, mis_graphs::io::to_text(&g)).unwrap();
        let opts = RunOpts {
            graph_path: Some(path.to_string_lossy().into_owned()),
            trials: 1,
            ..RunOpts::default()
        };
        let out = execute(&opts).unwrap();
        assert!(out.contains("6 nodes / 5 edges"), "{out}");
    }

    #[test]
    fn metrics_flag_writes_one_jsonl_record_per_round() {
        let dir = std::env::temp_dir().join("mis_cli_test_metrics");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.jsonl");
        let opts = RunOpts {
            n: 48,
            trials: 2,
            metrics: Some(path.to_string_lossy().into_owned()),
            ..RunOpts::default()
        };
        let out = execute(&opts).unwrap();
        assert!(out.contains("round metrics:"), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        let mut trials_seen = std::collections::HashSet::new();
        assert!(!text.trim().is_empty());
        for line in text.lines() {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            let trial = v["trial"].as_u64().unwrap();
            trials_seen.insert(trial);
            assert!(v["round"].is_u64(), "{line}");
            assert!(v["cumulative_energy"].is_u64(), "{line}");
        }
        assert_eq!(trials_seen.len(), 2);
    }

    #[test]
    fn rejects_metrics_on_congest() {
        let opts = RunOpts {
            algorithm: Algorithm::CongestLuby,
            metrics: Some("out.jsonl".into()),
            ..RunOpts::default()
        };
        assert!(execute(&opts).unwrap_err().contains("radio"));
    }

    #[test]
    fn resume_sweep_checkpoints_and_reruns_only_missing_trials() {
        let dir = std::env::temp_dir().join(format!("mis_cli_test_resume_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.jsonl");
        let _ = std::fs::remove_file(&path);
        let base = RunOpts {
            n: 48,
            seed: 4,
            resume: Some(path.to_string_lossy().into_owned()),
            ..RunOpts::default()
        };
        let opts = RunOpts {
            trials: 2,
            ..base.clone()
        };
        let out = execute(&opts).unwrap();
        assert!(
            out.contains("checkpoint: 2 of 2 trial(s) recorded"),
            "{out}"
        );
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 2);

        // Re-running for 4 trials appends only the 2 missing ones, and the
        // merged report covers all 4.
        let opts = RunOpts {
            trials: 4,
            ..base.clone()
        };
        let out = execute(&opts).unwrap();
        assert!(
            out.contains("checkpoint: 4 of 4 trial(s) recorded"),
            "{out}"
        );
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 4);
        assert!(out.contains("success 100%"), "{out}");

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn rejects_resume_on_congest() {
        let opts = RunOpts {
            algorithm: Algorithm::CongestLuby,
            resume: Some("sweep.jsonl".into()),
            ..RunOpts::default()
        };
        assert!(execute(&opts).unwrap_err().contains("radio"));
    }

    #[test]
    fn missing_graph_file_errors() {
        let opts = RunOpts {
            graph_path: Some("/definitely/not/here.txt".into()),
            ..RunOpts::default()
        };
        assert!(execute(&opts).unwrap_err().contains("cannot read"));
    }
}
