//! The synchronous round engine.
//!
//! The engine maintains a wake schedule keyed by round number; sleeping
//! nodes are skipped entirely, so simulation cost is proportional to the
//! total *awake* node-rounds (plus neighborhood scans for listeners), not to
//! `rounds × n`. This is what makes the no-CD experiments — whose round
//! complexity is Θ(log³n·log Δ) with mostly-sleeping nodes — tractable at
//! n ≈ 10⁵.
//!
//! # Engine modes and the quiet-round contract
//!
//! Two scheduling backends implement the wake schedule — the default
//! [`EngineMode::Sparse`] min-heap and the [`EngineMode::Dense`] reference
//! table scan (see [`EngineMode`]). Both drive the *same* round pipeline
//! and observe the same quiet-round contract: a round in which no node is
//! due (everyone asleep, down, or pre-join) is never *processed* — no RNG
//! stream advances, no trace event is recorded, and no
//! [`RoundMetrics`] row is emitted, so metrics timelines index rounds by
//! their `round` field, not by position. The engine fast-forwards straight
//! to the next due round; only [`ConvergencePolicy`] deadlines are honoured
//! inside the jumped span (a run can end at its exact deadline round even
//! when that round lies strictly between two due rounds). Because the
//! backends share everything but the schedule lookup, their outputs are
//! byte-identical — `RunReport` JSON, trace streams, RNG consumption —
//! an invariant fuzzed by the `engine_differential` test suite.
//!
//! # Fault injection
//!
//! A [`SimConfig`] carries a [`FaultPlan`] describing how the run departs
//! from the paper's clean model (per-edge reception loss, crash-stop
//! faults, jammers, staggered wake-up and dormancy windows — see
//! [`crate::fault`]). The fault-free path is kept branch-cheap: the plan is
//! resolved once per run into per-class flags, and every fault check in the
//! round loop is gated on a cached boolean, so an inert plan costs nothing
//! measurable (enforced by `bench_trace_overhead`).
//!
//! Loss is applied per *(listener, transmitter) signal edge, before channel
//! resolution*: each arriving signal — a real transmission or jammer noise
//! — independently fades with probability `loss`, and the listener's
//! feedback is derived from the surviving arrivals. Every channel model
//! therefore experiences the same physical fade: at `loss = 1.0` every
//! listener hears silence, whether its neighborhood had one beeper or ten.
//!
//! # Multichannel rounds
//!
//! [`SimConfig::with_channels`] gives the network `F` orthogonal channels
//! (Daum–Kuhn model): each awake node tunes to one channel per round via
//! [`Action::on_channel`], collision resolution runs independently per
//! channel, and *global channel adversaries*
//! ([`crate::fault::ChannelAdversary`]) may render up to `t < F` channels
//! undecodable per round — the engine caps the jam set at `F - 1`. The
//! default `F = 1` replays the single-channel semantics byte-for-byte:
//! channel 0 keeps the legacy fade stream, per-channel state is never
//! allocated, and every multichannel branch is gated on cached booleans.
//! Channels `>= 1` fade from a reserved stream keyed by
//! `(channel, round, listener)` so adding channels never perturbs
//! channel-0 draws. See docs/MULTICHANNEL.md for the full contract.
//!
//! # Crash recovery, churn, and convergence
//!
//! Plans with crash-*recovery* clauses ([`FaultPlan::with_recovery`],
//! [`FaultPlan::with_recover_by`], [`FaultPlan::with_churn`],
//! [`FaultPlan::with_join`]) make faults non-terminal: a node scheduled for
//! a down window `[down, up)` is removed from the round loop at `down`
//! (its protocol state and lifecycle stamps are wiped, and it counts in the
//! `crashed` population while down), then at `up` the engine rebuilds it
//! via the run's factory, calls [`Protocol::on_restart`], and re-admits it;
//! its first post-recovery `act` happens at `up + 1`. Mid-run joins hold a
//! node out of the loop (it counts as sleeping) until its join round.
//!
//! Because recovery makes "did the run end with a correct MIS?" the wrong
//! question, such runs track *convergence* instead: after every round in
//! which the live picture changed, the engine checks MIS-ness of the
//! statuses on the subgraph induced by the currently-live nodes, and
//! [`RunReport::converged_at`] reports the first round at or after the last
//! scheduled fault where that check passes and keeps passing. A
//! [`ConvergencePolicy`] additionally stops the run early once convergence
//! has held for a stability window — necessary for self-healing protocols
//! that otherwise monitor forever — and its quiescence watchdog aborts
//! runs that never re-converge within a budget
//! ([`RunReport::watchdog_fired`]). All of this is gated on the same
//! resolved-flag scheme as the other fault classes: an inert plan with no
//! policy skips every recovery branch.

use crate::energy::EnergyMeter;
use crate::fault::{ChannelAdversary, FaultKind, FaultPlan};
use crate::metrics::{ChannelRoundMetrics, MetricsAccumulator, RoundCounters, RoundMetrics};
use crate::model::{Action, ChannelModel, Feedback, Message, NodeStatus};
use crate::par::{engine_pool, shard_slices};
use crate::protocol::{NodeRng, Protocol};
use crate::report::RunReport;
use crate::rng::split_seed;
use crate::state::BitSet;
use crate::trace::{EventKind, EventMask, NullTrace, TraceEvent, TraceSink};
use mis_graphs::{Graph, NodeId};
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// When and how a run is judged *converged* (see the module docs).
///
/// Convergence is tracked automatically for any run whose
/// [`FaultPlan`] has recovery or join clauses; installing a policy via
/// [`SimConfig::with_convergence`] additionally changes how the run *ends*:
///
/// - once the live-subgraph MIS has been correct for `stability`
///   consecutive rounds after the last scheduled fault, the run stops
///   early and is reported `completed` with
///   [`RunReport::converged_at`](crate::RunReport::converged_at) set —
///   this is how runs of self-healing wrappers (which never finish on
///   their own) terminate;
/// - if `quiescence` is set and the run has not converged-and-stabilised
///   within that many rounds after the last scheduled fault, the run is
///   aborted with [`RunReport::watchdog_fired`](crate::RunReport) set and
///   `completed == false`.
///
/// Both triggers need a *finite* last-fault round: plans with continuous
/// fault processes (per-edge loss, jammers) never quiesce, so the policy
/// is inert for them and the run ends by finishing or at `max_rounds`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvergencePolicy {
    /// Consecutive correct rounds (after the last scheduled fault) required
    /// before the run may stop early.
    pub stability: u64,
    /// Abort budget: rounds after the last scheduled fault within which the
    /// run must converge and stabilise, or be aborted. `None` disables the
    /// watchdog.
    pub quiescence: Option<u64>,
}

impl ConvergencePolicy {
    /// A policy with the given stability window and no watchdog.
    pub fn new(stability: u64) -> ConvergencePolicy {
        ConvergencePolicy {
            stability,
            quiescence: None,
        }
    }

    /// Sets the quiescence watchdog budget.
    ///
    /// # Panics
    ///
    /// Panics if `quiescence < stability` — the watchdog would then always
    /// fire before a converged run could prove itself stable.
    pub fn with_quiescence(mut self, quiescence: u64) -> ConvergencePolicy {
        assert!(
            quiescence >= self.stability,
            "quiescence budget {quiescence} is shorter than the stability window {}",
            self.stability
        );
        self.quiescence = Some(quiescence);
        self
    }
}

/// Which scheduling backend finds the nodes due each round (module docs).
///
/// Both backends run the *same* round pipeline over the same wake
/// schedule and are byte-for-byte equivalent — identical [`RunReport`]s,
/// trace streams, and RNG consumption for any (graph, config, protocol)
/// triple — an invariant enforced by the `engine_differential` proptest
/// suite. They differ only in how the due set is located:
///
/// - [`EngineMode::Sparse`] (the default) keys a binary min-heap by wake
///   round: per-round cost is proportional to the number of *due* nodes
///   (plus their neighborhood scans), and quiet spans are skipped in one
///   jump;
/// - [`EngineMode::Dense`] scans a per-node wake table — O(n) per
///   processed round — and exists as the simple reference oracle the
///   sparse backend is differentially tested against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum EngineMode {
    /// O(n)-per-round scan of the per-node wake table: the reference
    /// oracle.
    Dense,
    /// Min-heap wake queue: touch only due nodes, jump over quiet spans.
    #[default]
    Sparse,
}

/// Configuration for one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Collision-resolution model.
    pub channel: ChannelModel,
    /// Number of independent channels `F` (Daum–Kuhn multichannel model,
    /// docs/MULTICHANNEL.md). Defaults to 1 — the paper's single-channel
    /// setting, where every legacy protocol behaves byte-identically to
    /// pre-multichannel builds. With `F > 1` each awake node picks a
    /// channel per round ([`Action::on_channel`]) and collision resolution
    /// runs independently per channel under the same [`ChannelModel`].
    pub channels: u16,
    /// Hard cap on simulated rounds; a run that hits it is reported as
    /// incomplete rather than looping forever.
    pub max_rounds: u64,
    /// RADIO-CONGEST message budget in bits. `None` derives the paper's
    /// O(log n) budget as `4·⌈log₂(n+2)⌉ + 8` at run time.
    pub message_bits: Option<u32>,
    /// Master seed; all node streams derive from it.
    pub seed: u64,
    /// Fault injection: how the run departs from the paper's clean model
    /// (per-edge reception loss, crash-stop faults, jammers, wake-up /
    /// dormancy windows). Inert by default; see [`crate::fault`].
    pub faults: FaultPlan,
    /// Collect a per-round [`RoundMetrics`] timeline into
    /// [`RunReport::metrics`]. Off by default; aggregation adds a handful
    /// of counter increments per processed round when enabled.
    pub collect_metrics: bool,
    /// Convergence-based termination (early stop once the live-subgraph
    /// MIS has been stable, quiescence watchdog). `None` by default; see
    /// [`ConvergencePolicy`].
    pub convergence: Option<ConvergencePolicy>,
    /// Scheduling backend for the round loop. [`EngineMode::Sparse`] by
    /// default; the dense oracle exists for differential testing and
    /// benchmarking, never for accuracy — the two are byte-equivalent.
    pub mode: EngineMode,
    /// Worker threads for the intra-round shard phases. `1` (the
    /// default) runs fully serial; any value is byte-equivalent to any
    /// other — thread count is an execution strategy, not an input, and
    /// is deliberately excluded from [`SimConfig::fingerprint`]. See
    /// `docs/PARALLEL_ENGINE.md`.
    pub threads: usize,
}

impl SimConfig {
    /// A config with the given channel model and library defaults
    /// (`max_rounds = 10⁹`, derived message budget, seed 0, no faults).
    pub fn new(channel: ChannelModel) -> SimConfig {
        SimConfig {
            channel,
            channels: 1,
            max_rounds: 1_000_000_000,
            message_bits: None,
            seed: 0,
            faults: FaultPlan::none(),
            collect_metrics: false,
            convergence: None,
            mode: EngineMode::default(),
            threads: 1,
        }
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> SimConfig {
        self.seed = seed;
        self
    }

    /// Sets the channel count `F` (see [`SimConfig::channels`]). `F = 1`
    /// replays the single-channel semantics exactly.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn with_channels(mut self, channels: u16) -> SimConfig {
        assert!(channels >= 1, "channel count must be at least 1");
        self.channels = channels;
        self
    }

    /// Sets the round cap.
    pub fn with_max_rounds(mut self, max_rounds: u64) -> SimConfig {
        self.max_rounds = max_rounds;
        self
    }

    /// Sets an explicit message-size budget in bits.
    pub fn with_message_bits(mut self, bits: u32) -> SimConfig {
        self.message_bits = Some(bits);
        self
    }

    /// Enables per-round metrics collection: the run's [`RunReport`] will
    /// carry one [`RoundMetrics`] record per processed round in
    /// [`RunReport::metrics`].
    pub fn with_round_metrics(mut self) -> SimConfig {
        self.collect_metrics = true;
        self
    }

    /// Installs a fault plan (replacing any previously configured one).
    pub fn with_faults(mut self, faults: FaultPlan) -> SimConfig {
        self.faults = faults;
        self
    }

    /// Installs a [`ConvergencePolicy`] (replacing any previous one).
    pub fn with_convergence(mut self, policy: ConvergencePolicy) -> SimConfig {
        self.convergence = Some(policy);
        self
    }

    /// Selects the scheduling backend (see [`EngineMode`]). Results are
    /// byte-identical across modes; only wall-clock cost differs.
    pub fn with_engine_mode(mut self, mode: EngineMode) -> SimConfig {
        self.mode = mode;
        self
    }

    /// Sets the worker-thread count for the intra-round shard phases.
    /// Results are byte-identical for every thread count (a tested
    /// property, see `engine_differential`); only wall-clock cost
    /// differs, so [`SimConfig::fingerprint`] ignores this field.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_threads(mut self, threads: usize) -> SimConfig {
        assert!(threads >= 1, "thread count must be at least 1");
        self.threads = threads;
        self
    }

    /// Reception-loss sugar: sets the fault plan's per-edge fade
    /// probability, leaving its other clauses untouched. Equivalent to
    /// `config.faults.loss = p` via [`FaultPlan::with_loss`].
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn with_loss_probability(mut self, p: f64) -> SimConfig {
        self.faults = self.faults.with_loss(p);
        self
    }

    /// A stable one-line fingerprint of the full configuration, for use as
    /// a cache-key ingredient by result caches (see
    /// `mis-experiments::orchestrator`). Covers every output-determining
    /// field of the config — channel model, channel count, round cap,
    /// message budget, seed, fault plan (including channel-jam clauses,
    /// via the plan's `Debug`), metrics flag, convergence policy, and
    /// engine mode (mode equivalence is a tested property of the engine,
    /// not an assumption a cache should bake in). [`SimConfig::threads`]
    /// is deliberately **excluded**: thread count is an execution strategy
    /// with byte-identical results, so a warm cache must keep hitting when
    /// a rerun adds `--threads`. Stable within one crate version; cache
    /// layers must additionally salt keys with the crate version to cover
    /// formatting drift across releases.
    pub fn fingerprint(&self) -> String {
        // A thread-free shadow of the config: `threads` is the one field
        // deliberately left out. `channels` joining the shadow changed
        // every fingerprint relative to pre-multichannel builds — which is
        // why `CACHE_SCHEMA` was bumped alongside it (a multichannel
        // config must never replay a cached single-channel result).
        #[derive(Debug)]
        #[allow(dead_code)] // fields are read by the derived Debug only
        struct SimConfig<'a> {
            channel: &'a ChannelModel,
            channels: &'a u16,
            max_rounds: &'a u64,
            message_bits: &'a Option<u32>,
            seed: &'a u64,
            faults: &'a FaultPlan,
            collect_metrics: &'a bool,
            convergence: &'a Option<ConvergencePolicy>,
            mode: &'a EngineMode,
        }
        let shadow = SimConfig {
            channel: &self.channel,
            channels: &self.channels,
            max_rounds: &self.max_rounds,
            message_bits: &self.message_bits,
            seed: &self.seed,
            faults: &self.faults,
            collect_metrics: &self.collect_metrics,
            convergence: &self.convergence,
            mode: &self.mode,
        };
        format!("{shadow:?}")
    }

    fn resolved_message_bits(&self, n: usize) -> u32 {
        self.message_bits
            .unwrap_or_else(|| 4 * ((n + 2) as f64).log2().ceil() as u32 + 8)
    }
}

/// The engine's wake schedule: which node is due at which round, behind
/// the backend selected by [`EngineMode`].
///
/// Both backends rely on (and preserve) two invariants of the round loop:
/// every live node is scheduled exactly once, and every `push` made while
/// a round is being drained targets a strictly later round. Under those
/// invariants the backends yield identical `(round, node)` pop sequences —
/// the heap pops pairs in ascending lexicographic order, and the dense
/// cursor walks node ids in ascending order at the minimum due round —
/// which is what makes the modes byte-equivalent.
enum WakeSchedule {
    /// Min-heap of `(wake round, node)`.
    Sparse(BinaryHeap<Reverse<(u64, NodeId)>>),
    /// Per-node wake table: `next_wake[v]` is meaningful iff bit `v` of
    /// `queued` is set. `cursor` is the dense drain position within the
    /// current round.
    Dense {
        next_wake: Vec<u64>,
        queued: BitSet,
        cursor: usize,
    },
}

impl WakeSchedule {
    fn new(mode: EngineMode, n: usize) -> WakeSchedule {
        match mode {
            EngineMode::Sparse => WakeSchedule::Sparse(BinaryHeap::with_capacity(n)),
            EngineMode::Dense => WakeSchedule::Dense {
                next_wake: vec![0; n],
                queued: BitSet::with_len(n),
                cursor: 0,
            },
        }
    }

    /// Schedules node `v` to be polled at `round`. The caller guarantees
    /// `v` is not currently scheduled.
    fn push(&mut self, round: u64, v: NodeId) {
        match self {
            WakeSchedule::Sparse(heap) => heap.push(Reverse((round, v))),
            WakeSchedule::Dense {
                next_wake, queued, ..
            } => {
                debug_assert!(!queued.get(v), "node {v} scheduled twice");
                next_wake[v] = round;
                queued.set(v);
            }
        }
    }

    /// The earliest round at which any scheduled node is due, or `None`
    /// when the schedule is empty. Resets the dense drain cursor.
    fn next_round(&mut self) -> Option<u64> {
        match self {
            WakeSchedule::Sparse(heap) => heap.peek().map(|&Reverse((r, _))| r),
            WakeSchedule::Dense {
                next_wake,
                queued,
                cursor,
            } => {
                *cursor = 0;
                let mut best: Option<u64> = None;
                let mut probe = queued.next_set_from(0);
                while let Some(v) = probe {
                    let r = next_wake[v];
                    best = Some(best.map_or(r, |b: u64| b.min(r)));
                    probe = queued.next_set_from(v + 1);
                }
                best
            }
        }
    }

    /// Pops the next node due exactly at `round`, in ascending node order,
    /// or `None` once the round is drained. Pushes made between `pop_due`
    /// calls must target strictly later rounds (the dense cursor never
    /// revisits a node id within a round).
    fn pop_due(&mut self, round: u64) -> Option<NodeId> {
        match self {
            WakeSchedule::Sparse(heap) => {
                let &Reverse((r, v)) = heap.peek()?;
                if r != round {
                    return None;
                }
                heap.pop();
                Some(v)
            }
            WakeSchedule::Dense {
                next_wake,
                queued,
                cursor,
            } => {
                while let Some(v) = queued.next_set_from(*cursor) {
                    *cursor = v + 1;
                    if next_wake[v] == round {
                        queued.clear(v);
                        return Some(v);
                    }
                }
                None
            }
        }
    }
}

/// Per-node result of the sharded delivery phase: the feedback delivered
/// plus the node's contribution to the round's channel counters. The
/// serial merge folds the counters into the round totals in ascending
/// node order — a commutative integer sum, so the totals are independent
/// of shard boundaries by construction.
#[derive(Clone, Copy)]
struct Delivery {
    feedback: Feedback,
    collisions: u32,
    receptions: u32,
    lost: u32,
    faded: u32,
    jammed: u32,
}

impl Default for Delivery {
    fn default() -> Delivery {
        Delivery {
            feedback: Feedback::Sent,
            collisions: 0,
            receptions: 0,
            lost: 0,
            faded: 0,
            jammed: 0,
        }
    }
}

/// The fade stream for listener-or-transmitter `v` in `round`: a short
/// per-(round, node) RNG derived from the reserved channel stream, so
/// per-edge fading draws are independent of the order nodes are resolved
/// in — the property the sharded delivery phase rests on (and a
/// quiet-round no-op: skipped rounds derive no streams).
fn fade_stream(fade_seed: u64, round: u64, v: NodeId) -> NodeRng {
    NodeRng::seed_from_u64(split_seed(split_seed(fade_seed, round), v as u64))
}

/// The fade stream for a node tuned to channel `c >= 1` of a multichannel
/// run: keyed per (channel, round, node) off the reserved
/// `u64::MAX - 3` stream family. Channel 0 keeps the legacy
/// [`fade_stream`] keying, so an `F = 1` run — and channel-0 listeners of
/// an `F > 1` run — draw exactly the single-channel fade sequence
/// (docs/MULTICHANNEL.md §RNG streams).
fn mc_fade_stream(mc_fade_seed: u64, channel: u16, round: u64, v: NodeId) -> NodeRng {
    NodeRng::seed_from_u64(split_seed(
        split_seed(split_seed(mc_fade_seed, channel as u64), round),
        v as u64,
    ))
}

/// Drives a protocol over a graph under a [`SimConfig`].
#[derive(Debug, Clone)]
pub struct Simulator<'g> {
    graph: &'g Graph,
    config: SimConfig,
    /// Per-node wake-up rounds (asynchronous wake-up extension). `None`
    /// means the wake plan of the config's [`FaultPlan`] applies (which
    /// defaults to the paper's synchronous wake-up at round 0).
    wake_offsets: Option<Vec<u64>>,
}

impl<'g> Simulator<'g> {
    /// Creates a simulator for `graph` under `config`.
    pub fn new(graph: &'g Graph, config: SimConfig) -> Simulator<'g> {
        Simulator {
            graph,
            config,
            wake_offsets: None,
        }
    }

    /// Enables *asynchronous wake-up*: node `v` is first polled at round
    /// `offsets[v]` instead of round 0 (messages sent before then are
    /// lost, as for any sleeping node). The paper's algorithms assume
    /// synchronous wake-up (§1.1); this extension exists to measure how
    /// much that assumption carries (see the robustness tests).
    ///
    /// Takes precedence over the [`FaultPlan`]'s
    /// [`WakePlan`](crate::fault::WakePlan) when both are set.
    ///
    /// # Panics
    ///
    /// Panics if `offsets.len() != graph.len()`.
    pub fn with_wake_offsets(mut self, offsets: Vec<u64>) -> Simulator<'g> {
        assert_eq!(offsets.len(), self.graph.len(), "offsets length mismatch");
        self.wake_offsets = Some(offsets);
        self
    }

    /// The graph being simulated.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The active configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the protocol produced by `factory` on every node until all
    /// nodes finish or `max_rounds` is reached.
    ///
    /// `factory(v, rng)` constructs node `v`'s state machine; `rng` is the
    /// node's private stream (usable for e.g. random ID generation).
    pub fn run<P, F>(&self, factory: F) -> RunReport
    where
        P: Protocol + Send,
        F: FnMut(NodeId, &mut NodeRng) -> P + Send,
    {
        self.run_traced(factory, &mut NullTrace)
    }

    /// Like [`Simulator::run`], recording events into `trace`.
    ///
    /// With [`SimConfig::threads`] above one, the round loop's shard
    /// phases run on a dedicated engine pool; results are byte-identical
    /// to the serial run for every thread count (see
    /// `docs/PARALLEL_ENGINE.md`), which is why `P`, `F`, and `T` need
    /// only `Send`, never `Sync` — each is still driven from one thread
    /// at a time.
    ///
    /// # Panics
    ///
    /// Panics if a protocol violates the engine contract: sleeping to a
    /// round not in the future, or transmitting a message over the
    /// RADIO-CONGEST budget. These are protocol bugs, not run failures.
    pub fn run_traced<P, F, T>(&self, factory: F, trace: &mut T) -> RunReport
    where
        P: Protocol + Send,
        F: FnMut(NodeId, &mut NodeRng) -> P + Send,
        T: TraceSink + Send,
    {
        if self.config.threads > 1 {
            engine_pool(self.config.threads).install(|| self.run_loop(factory, trace))
        } else {
            self.run_loop(factory, trace)
        }
    }

    /// The round loop proper. Runs on the caller's thread; when the
    /// config asks for parallelism, [`Simulator::run_traced`] has already
    /// installed the engine pool so the shard phases' `rayon::join` lands
    /// on its workers.
    fn run_loop<P, F, T>(&self, mut factory: F, trace: &mut T) -> RunReport
    where
        P: Protocol + Send,
        F: FnMut(NodeId, &mut NodeRng) -> P,
        T: TraceSink,
    {
        let n = self.graph.len();
        let message_bits = self.config.resolved_message_bits(n);
        let mut rngs: Vec<NodeRng> = (0..n)
            .map(|v| NodeRng::seed_from_u64(split_seed(self.config.seed, v as u64)))
            .collect();
        // Dedicated stream *family* for channel-level fading, so enabling
        // loss never perturbs any node's private randomness (fault
        // *resolution* draws from yet another stream; see
        // `FaultPlan::resolve`). Each listener-or-transmitter derives its
        // own per-round stream via `fade_stream`, which is what lets the
        // delivery phase shard without an order-dependent shared RNG.
        let fade_seed = split_seed(self.config.seed, u64::MAX - 1);
        let par = self.config.threads > 1;
        let resolved = self.config.faults.resolve(n, self.config.seed);
        let loss = self.config.faults.loss;
        let lossy = loss > 0.0;
        let has_jammers = !resolved.jammer_list.is_empty();
        // Multichannel state (docs/MULTICHANNEL.md). `F = 1` keeps every
        // flag false and every scratch vector empty: the single-channel
        // round loop below is byte- and cost-identical to pre-multichannel
        // builds. Channels >= 1 fade from the reserved `u64::MAX - 3`
        // stream family; the roaming channel adversary draws from
        // `u64::MAX - 4`, keyed per (clause, round), so a plan gaining a
        // channel-jam clause perturbs no other stream.
        let channels = self.config.channels;
        let multi = channels > 1;
        let mc_fade_seed = split_seed(self.config.seed, u64::MAX - 3);
        let roam_seed = split_seed(self.config.seed, u64::MAX - 4);
        let has_channel_jams = multi && resolved.has_channel_jams();
        if has_channel_jams {
            for clause in &resolved.channel_jams {
                if let ChannelAdversary::Fixed(chs) = &clause.adversary {
                    for &c in chs {
                        assert!(
                            c < channels,
                            "channel-jam clause names channel {c}; config has {channels}"
                        );
                    }
                }
            }
        }
        let has_adaptive = has_channel_jams
            && resolved
                .channel_jams
                .iter()
                .any(|c| matches!(c.adversary, ChannelAdversary::Adaptive(_)));
        let want_chan_metrics = multi && self.config.collect_metrics;
        // On-air transmissions per channel, maintained for the adaptive
        // adversary (which reacts to the previous processed round's
        // counts) and for the per-channel metrics rows.
        let track_chan_tx = has_adaptive || want_chan_metrics;
        let has_crashes = resolved.has_crashes();
        let has_dormancy = resolved.has_dormancy();
        let has_recovery = resolved.has_recovery();
        let has_joins = resolved.has_joins();
        // Per-edge fading and jammer noise both force a full neighborhood
        // scan per listener; without them the fast path early-exits at the
        // second arrival.
        let listener_slow = lossy || has_jammers;
        let mut faulty = if has_jammers || has_crashes || has_recovery {
            BitSet::with_len(n)
        } else {
            BitSet::new()
        };
        // Crash-recovery state: `win_cursor[v]` indexes v's next (or
        // current) down window, `down_now[v]` marks a node inside one, and
        // `parked[v]` marks a node that finished but still has a future
        // window scheduled — it stays queued (at its next down round)
        // instead of retiring, because the window will wipe it back to life.
        let mut win_cursor: Vec<usize> = if has_recovery { vec![0; n] } else { Vec::new() };
        let mut down_now = if has_recovery {
            BitSet::with_len(n)
        } else {
            BitSet::new()
        };
        let mut parked = if has_recovery {
            BitSet::with_len(n)
        } else {
            BitSet::new()
        };
        let mut join_pending = if has_joins {
            let mut pending = BitSet::with_len(n);
            for v in 0..n {
                if resolved.join_of(v) > 0 {
                    pending.set(v);
                }
            }
            pending
        } else {
            BitSet::new()
        };
        let mut recovered_cum: u32 = 0;
        let mut joined_cum: u32 = 0;
        // Convergence tracking (see the module docs): `conv_candidate` is
        // the first round of the current unbroken correct streak of the
        // live-subgraph MIS check; `conv_dirty` marks rounds whose events
        // may have changed the verdict.
        let want_conv = has_recovery || has_joins || self.config.convergence.is_some();
        let last_fault = resolved.last_fault_round;
        let mut conv_candidate: Option<u64> = None;
        let mut conv_dirty = want_conv;
        // Explicit simulator offsets override the plan's wake plan.
        let wake_offsets: Option<&Vec<u64>> = self
            .wake_offsets
            .as_ref()
            .or(resolved.wake_offsets.as_ref());
        // Jammer `u` is on air in `round` iff
        // `jam_from[u] <= round < jam_until[u]` (wake to crash).
        let (jam_from, jam_until): (Vec<u64>, Vec<u64>) = if has_jammers {
            (0..n)
                .map(|v| {
                    if resolved.jammer[v] {
                        (wake_offsets.map_or(0, |o| o[v]), resolved.crash_of(v))
                    } else {
                        (u64::MAX, 0)
                    }
                })
                .unzip()
        } else {
            (Vec::new(), Vec::new())
        };
        let mut nodes: Vec<P> = (0..n).map(|v| factory(v, &mut rngs[v])).collect();
        let mut meters = vec![EnergyMeter::new(); n];
        let mut statuses: Vec<NodeStatus> = nodes.iter().map(|p| p.status()).collect();

        // Event-mask contract: queried once, here, for the whole run.
        let mask = trace.mask();
        let record_finish = mask.contains(EventKind::Finished);
        let record_fault = mask.contains(EventKind::Fault);
        let want_metrics = self.config.collect_metrics || mask.contains(EventKind::RoundMetrics);
        // Tracks nodes whose decision was revoked and not re-made, for the
        // `repairing` metrics column. Only maintained when metrics are on.
        let mut reopened = if want_metrics {
            BitSet::with_len(n)
        } else {
            BitSet::new()
        };
        let mut acc = MetricsAccumulator::default();
        if want_metrics {
            acc.joined_mis = statuses.iter().filter(|&&s| s == NodeStatus::InMis).count() as u32;
            acc.decided = statuses.iter().filter(|s| s.is_decided()).count() as u32;
        }
        let mut timeline: Vec<RoundMetrics> = Vec::new();
        let mut dormancy_noted = if has_dormancy && record_fault {
            BitSet::with_len(n)
        } else {
            BitSet::new()
        };

        // Wake schedule (backend per `config.mode`): nodes absent from it
        // are finished, crashed, or jammers (jammers never run the
        // protocol; they are pure channel noise).
        let mut queue = WakeSchedule::new(self.config.mode, n);
        let mut live = 0usize;
        let mut finished_cum: u32 = 0;
        let mut crashed_cum: u32 = 0;
        for v in 0..n {
            if has_jammers && resolved.jammer[v] {
                faulty.set(v);
                if record_fault {
                    trace.record(TraceEvent::Fault {
                        round: 0,
                        node: v,
                        fault: FaultKind::Jam,
                    });
                }
                continue;
            }
            if nodes[v].finished() {
                meters[v].record_finished(0);
                finished_cum += 1;
                if record_finish {
                    trace.record(TraceEvent::Finished { round: 0, node: v });
                }
                // A pre-finished node with a scheduled down window cannot
                // retire for good: park it at the window instead.
                if has_recovery {
                    if let Some(&(down, _)) = resolved.windows_of(v).first() {
                        parked.set(v);
                        queue.push(down, v);
                        live += 1;
                    }
                }
            } else {
                // A joining node is held out until its join round; a node
                // with a down window earlier than its wake goes down first
                // (its pre-wake state is vacuous anyway).
                let mut wake = wake_offsets.map_or(0, |o| o[v]);
                if has_joins {
                    wake = wake.max(resolved.join_of(v));
                }
                if has_recovery {
                    if let Some(&(down, _)) = resolved.windows_of(v).first() {
                        wake = wake.min(down);
                    }
                }
                queue.push(wake, v);
                live += 1;
            }
        }

        // Scratch: which nodes transmit this round (epoch-stamped), plus
        // the per-round work lists and shard buffers — hoisted once for
        // the whole run so the steady-state loop is allocation-free (see
        // `engine_alloc`), serial and parallel alike: the shard phases
        // write into pre-sized slices of these vectors.
        let mut tx_stamp: Vec<u64> = vec![u64::MAX; n];
        let mut tx_msg: Vec<Message> = vec![Message::unary(); n];
        // Multichannel scratch, empty (and untouched) at F = 1: the
        // channel each awake node tuned to this round (valid where
        // `tx_stamp` stamps a transmitter or the node is in `listeners`),
        // the jammed-channel mask, and the per-channel counters.
        let mut act_chan: Vec<u16> = vec![0; if multi { n } else { 0 }];
        let fc = channels as usize;
        let mut jam_mask: Vec<bool> = vec![false; if has_channel_jams { fc } else { 0 }];
        let mut chan_tx: Vec<u32> = vec![0; if track_chan_tx { fc } else { 0 }];
        let mut chan_listen: Vec<u32> = vec![0; if want_chan_metrics { fc } else { 0 }];
        let mut chan_coll: Vec<u32> = vec![0; if want_chan_metrics { fc } else { 0 }];
        let mut chan_rx: Vec<u32> = vec![0; if want_chan_metrics { fc } else { 0 }];
        let mut adaptive_order: Vec<u16> = if has_adaptive {
            (0..channels).collect()
        } else {
            Vec::new()
        };
        let mut channel_timeline: Vec<ChannelRoundMetrics> = Vec::new();
        let mut due: Vec<NodeId> = Vec::new();
        let mut actors: Vec<NodeId> = Vec::new();
        let mut actions: Vec<Action> = Vec::new();
        let mut listeners: Vec<NodeId> = Vec::new();
        let mut transmitters: Vec<NodeId> = Vec::new();
        let mut tx_out: Vec<Delivery> = Vec::new();
        let mut rx_out: Vec<Delivery> = Vec::new();
        let mut sleep_updates: Vec<(NodeId, u64)> = Vec::new();
        let mut last_round_processed: u64 = 0;
        let record_actions = mask.contains(EventKind::Acted);
        let record_feedback = mask.contains(EventKind::Fed);

        while live > 0 {
            let round = queue.next_round().expect("live nodes are queued");
            // A convergence-policy deadline can land strictly inside a
            // quiet span (every scheduled node due past it). Nothing
            // happens in a quiet round — no status can change, so the
            // verdict from the last processed round still stands — but the
            // run must still *end* at the exact deadline round, as a
            // round-by-round execution would. Both backends take this
            // branch identically.
            if let Some(policy) = self.config.convergence {
                if last_fault != u64::MAX {
                    let horizon = round.min(self.config.max_rounds);
                    let candidate = if conv_dirty {
                        // Only possible before the first processed round:
                        // peek at the verdict without consuming the dirty
                        // flag (the first processed round will).
                        live_mis_ok(self.graph, &statuses, &faulty).then_some(0)
                    } else {
                        conv_candidate
                    };
                    let quiet_deadline = policy
                        .quiescence
                        .map_or(u64::MAX, |q| last_fault.saturating_add(q));
                    if let Some(c) = candidate {
                        let eff = c.max(last_fault);
                        let stop = eff.saturating_add(policy.stability);
                        // Ties with the watchdog go to the stability stop,
                        // exactly as in the processed-round path below.
                        if stop < horizon && stop <= quiet_deadline {
                            let metrics = self
                                .config
                                .collect_metrics
                                .then(|| std::mem::take(&mut timeline));
                            let channel_metrics =
                                want_chan_metrics.then(|| std::mem::take(&mut channel_timeline));
                            return self.finish_report(
                                nodes,
                                meters,
                                faulty,
                                stop + 1,
                                true,
                                message_bits,
                                metrics,
                                channel_metrics,
                                Some(eff),
                                false,
                            );
                        }
                    }
                    if quiet_deadline < horizon {
                        let metrics = self
                            .config
                            .collect_metrics
                            .then(|| std::mem::take(&mut timeline));
                        let channel_metrics =
                            want_chan_metrics.then(|| std::mem::take(&mut channel_timeline));
                        return self.finish_report(
                            nodes,
                            meters,
                            faulty,
                            quiet_deadline + 1,
                            false,
                            message_bits,
                            metrics,
                            channel_metrics,
                            None,
                            true,
                        );
                    }
                }
            }
            if round >= self.config.max_rounds {
                // Remaining nodes sleep past the horizon: incomplete run.
                let metrics = self
                    .config
                    .collect_metrics
                    .then(|| std::mem::take(&mut timeline));
                let converged_at =
                    anchored_convergence(conv_candidate, last_fault, self.config.max_rounds);
                let channel_metrics =
                    want_chan_metrics.then(|| std::mem::take(&mut channel_timeline));
                return self.finish_report(
                    nodes,
                    meters,
                    faulty,
                    self.config.max_rounds,
                    false,
                    message_bits,
                    metrics,
                    channel_metrics,
                    converged_at,
                    false,
                );
            }
            last_round_processed = round;
            let finished_before = finished_cum;
            let crashed_before = crashed_cum;
            listeners.clear();
            transmitters.clear();
            sleep_updates.clear();

            // Multichannel: resolve this round's jammed-channel set before
            // any action is collected. The adaptive adversary reads
            // `chan_tx`, which at this point still holds the *previous
            // processed* round's on-air counts (reset just below); the
            // roaming adversary draws from its per-(clause, round) stream,
            // so skipped quiet rounds consume nothing. The total jam set
            // is capped at F - 1 channels — the Daum–Kuhn solvability
            // condition t < F — with clauses served in declaration order.
            let mut jammed_now: u32 = 0;
            if has_channel_jams {
                for b in jam_mask.iter_mut() {
                    *b = false;
                }
                let cap = u32::from(channels) - 1;
                for (ci, clause) in resolved.channel_jams.iter().enumerate() {
                    if !(clause.from <= round && round < clause.until) {
                        continue;
                    }
                    match &clause.adversary {
                        ChannelAdversary::Fixed(chs) => {
                            for &c in chs {
                                if jammed_now >= cap {
                                    break;
                                }
                                if !jam_mask[c as usize] {
                                    jam_mask[c as usize] = true;
                                    jammed_now += 1;
                                }
                            }
                        }
                        ChannelAdversary::Roaming(t) => {
                            let mut rng = NodeRng::seed_from_u64(split_seed(
                                split_seed(roam_seed, ci as u64),
                                round,
                            ));
                            let budget = u32::from(*t).min(cap);
                            let mut picked = 0u32;
                            while picked < budget && jammed_now < cap {
                                let c = rand::Rng::gen_range(&mut rng, 0..channels) as usize;
                                if !jam_mask[c] {
                                    jam_mask[c] = true;
                                    jammed_now += 1;
                                    picked += 1;
                                }
                            }
                        }
                        ChannelAdversary::Adaptive(t) => {
                            // Busiest channels of the previous processed
                            // round; ties (and the first round, when every
                            // count is zero) fall to lower channel ids.
                            adaptive_order.sort_by_key(|&c| (Reverse(chan_tx[c as usize]), c));
                            for &c in adaptive_order.iter().take(*t as usize) {
                                if jammed_now >= cap {
                                    break;
                                }
                                if !jam_mask[c as usize] {
                                    jam_mask[c as usize] = true;
                                    jammed_now += 1;
                                }
                            }
                        }
                    }
                }
            }
            if track_chan_tx {
                for c in chan_tx.iter_mut() {
                    *c = 0;
                }
            }

            // Phase 1a: drain this round's due set up front. Both
            // backends yield nodes in ascending id order within a round,
            // so the worklist is deterministic and mode-independent, and
            // every requeue made below targets a strictly later round, so
            // draining first is equivalent to popping lazily.
            due.clear();
            while let Some(v) = queue.pop_due(round) {
                due.push(v);
            }

            // Phase 1b: lifecycle faults — crash-stop, recovery windows,
            // parking, joins. Serial: this mutates shared engine state
            // (the wake schedule, the population counters) and may call
            // the factory; running it first also keeps every fault trace
            // event ahead of the round's action events, as the trace
            // contract specifies. Survivors land in `actors`, still in
            // ascending id order.
            actors.clear();
            for &v in &due {
                // Crash-stop faults take effect when the node would next
                // act (observably identical for a node that slept through
                // its crash round — a sleeping node does nothing anyway).
                if has_crashes && resolved.crash_of(v) <= round {
                    live -= 1;
                    // A node already inside a down window was counted into
                    // the crashed population when it went down; a parked
                    // (finished, awaiting a window) node moves from the
                    // finished column to the crashed one.
                    if !(has_recovery && down_now.get(v)) {
                        crashed_cum += 1;
                    }
                    if has_recovery && parked.get(v) {
                        parked.clear(v);
                        finished_cum -= 1;
                    }
                    faulty.set(v);
                    conv_dirty |= want_conv;
                    if record_fault {
                        trace.record(TraceEvent::Fault {
                            round,
                            node: v,
                            fault: FaultKind::Crash,
                        });
                    }
                    continue;
                }
                if has_recovery {
                    let wins = resolved.windows_of(v);
                    if down_now.get(v) {
                        // The node was pushed at its window's `up` round:
                        // rebuild it, tell it it is a revival, and re-admit
                        // it. It acts again from `round + 1` (this round it
                        // still counts in the crashed population).
                        let up = wins[win_cursor[v]].1;
                        if round < up {
                            queue.push(up, v);
                            continue;
                        }
                        down_now.clear(v);
                        win_cursor[v] += 1;
                        faulty.clear(v);
                        crashed_cum -= 1;
                        recovered_cum += 1;
                        nodes[v] = factory(v, &mut rngs[v]);
                        nodes[v].on_restart(round, &mut rngs[v]);
                        if record_fault {
                            trace.record(TraceEvent::Fault {
                                round,
                                node: v,
                                fault: FaultKind::Recover,
                            });
                        }
                        // Register the fresh instance's status (the old one
                        // was wiped to Undecided when the node went down).
                        self.note_status(
                            &mut statuses,
                            &nodes,
                            v,
                            round,
                            &mut meters,
                            trace,
                            mask,
                            &mut acc,
                            &mut reopened,
                        );
                        conv_dirty = true;
                        queue.push(round + 1, v);
                        continue;
                    }
                    // Skip windows the node slept or idled past (defensive;
                    // sleep capping normally prevents this).
                    while win_cursor[v] < wins.len() && wins[win_cursor[v]].1 <= round {
                        win_cursor[v] += 1;
                    }
                    if win_cursor[v] < wins.len() && wins[win_cursor[v]].0 <= round {
                        // Down it goes: wipe its status and lifecycle
                        // stamps, count it crashed, and schedule the
                        // restart at the window's `up` round.
                        down_now.set(v);
                        faulty.set(v);
                        crashed_cum += 1;
                        if parked.get(v) {
                            parked.clear(v);
                            finished_cum -= 1;
                        }
                        let was = statuses[v];
                        if was != NodeStatus::Undecided {
                            statuses[v] = NodeStatus::Undecided;
                            if !reopened.is_empty() {
                                if was == NodeStatus::InMis {
                                    acc.joined_mis -= 1;
                                }
                                acc.decided -= 1;
                                if !reopened.get(v) {
                                    reopened.set(v);
                                    acc.repairing += 1;
                                }
                            }
                            if mask.contains(EventKind::StatusChanged) {
                                trace.record(TraceEvent::StatusChanged {
                                    round,
                                    node: v,
                                    status: NodeStatus::Undecided,
                                });
                            }
                        }
                        meters[v].record_down();
                        if record_fault {
                            trace.record(TraceEvent::Fault {
                                round,
                                node: v,
                                fault: FaultKind::Crash,
                            });
                        }
                        conv_dirty = true;
                        queue.push(wins[win_cursor[v]].1, v);
                        continue;
                    }
                    if parked.get(v) {
                        // Defensive: the parked node's window went stale
                        // before it was reached — retire it for good.
                        parked.clear(v);
                        live -= 1;
                        continue;
                    }
                }
                if has_joins && join_pending.get(v) {
                    join_pending.clear(v);
                    joined_cum += 1;
                    conv_dirty = true;
                    if record_fault {
                        trace.record(TraceEvent::Fault {
                            round,
                            node: v,
                            fault: FaultKind::Join,
                        });
                    }
                }
                actors.push(v);
            }

            // Phase 1c: collect actions. `act` sees only the node's own
            // state and private RNG stream, so the worklist shards freely
            // across the engine pool; each result lands in the pre-sized
            // slot matching the node's worklist position. With one thread
            // the identical loop runs inline — one code path, so
            // byte-equivalence across thread counts holds by construction.
            actions.resize_with(actors.len(), || Action::Listen);
            shard_slices(
                &actors,
                0,
                &mut nodes,
                &mut rngs,
                &mut actions,
                par,
                &|_v: NodeId, node: &mut P, rng: &mut NodeRng, out: &mut Action| {
                    *out = node.act(round, rng);
                },
            );

            // Phase 1d: apply the collected actions in ascending id
            // order. Trace, energy accounting, transmit staging, and
            // scheduling all happen here, serially — identical to a
            // node-at-a-time execution.
            for (i, &v) in actors.iter().enumerate() {
                let action = actions[i];
                if record_actions {
                    trace.record(TraceEvent::Acted {
                        round,
                        node: v,
                        action,
                    });
                }
                match action {
                    Action::Sleep { wake_at } => {
                        assert!(
                            wake_at > round,
                            "protocol bug: node {v} slept to round {wake_at} <= current {round}"
                        );
                        let changed = self.note_status(
                            &mut statuses,
                            &nodes,
                            v,
                            round,
                            &mut meters,
                            trace,
                            mask,
                            &mut acc,
                            &mut reopened,
                        );
                        conv_dirty |= changed && want_conv;
                        if nodes[v].finished() {
                            meters[v].record_finished(round);
                            finished_cum += 1;
                            if record_finish {
                                trace.record(TraceEvent::Finished { round, node: v });
                            }
                            if has_recovery && win_cursor[v] < resolved.windows_of(v).len() {
                                // A future down window will wipe this node
                                // back to life: park it at the window
                                // instead of retiring it.
                                parked.set(v);
                                queue.push(resolved.windows_of(v)[win_cursor[v]].0, v);
                            } else {
                                live -= 1;
                            }
                        } else {
                            sleep_updates.push((v, wake_at));
                        }
                    }
                    Action::Transmit(msg) | Action::TransmitOn(msg, _) => {
                        let chan = action.channel();
                        assert!(
                            chan < channels,
                            "protocol bug: node {v} transmitted on channel {chan}; config has {channels} channel(s)"
                        );
                        assert!(
                            msg.bit_len() <= message_bits,
                            "protocol bug: node {v} sent a {}-bit message; RADIO-CONGEST budget is {message_bits} bits",
                            msg.bit_len()
                        );
                        meters[v].record_transmit();
                        if has_dormancy && resolved.is_dormant(v, round) {
                            // Radio dead: the node pays the energy and
                            // believes it sent, but nothing goes on air.
                            if record_fault && !dormancy_noted.get(v) {
                                dormancy_noted.set(v);
                                trace.record(TraceEvent::Fault {
                                    round,
                                    node: v,
                                    fault: FaultKind::Dormant,
                                });
                            }
                        } else {
                            tx_stamp[v] = round;
                            tx_msg[v] = msg;
                            if multi {
                                act_chan[v] = chan;
                            }
                            if track_chan_tx {
                                chan_tx[chan as usize] += 1;
                            }
                        }
                        transmitters.push(v);
                    }
                    Action::Listen | Action::ListenOn(_) => {
                        let chan = action.channel();
                        assert!(
                            chan < channels,
                            "protocol bug: node {v} listened on channel {chan}; config has {channels} channel(s)"
                        );
                        meters[v].record_listen();
                        if multi {
                            act_chan[v] = chan;
                        }
                        if has_dormancy
                            && record_fault
                            && resolved.is_dormant(v, round)
                            && !dormancy_noted.get(v)
                        {
                            dormancy_noted.set(v);
                            trace.record(TraceEvent::Fault {
                                round,
                                node: v,
                                fault: FaultKind::Dormant,
                            });
                        }
                        listeners.push(v);
                    }
                }
            }
            for (v, mut wake_at) in sleep_updates.drain(..) {
                if has_recovery && win_cursor[v] < resolved.windows_of(v).len() {
                    // Cap the sleep at the node's next down round: it must
                    // be reachable to be taken down on schedule. (The lost
                    // original wake is irrelevant — the window wipes its
                    // state anyway.)
                    wake_at = wake_at.min(resolved.windows_of(v)[win_cursor[v]].0);
                }
                if wake_at < self.config.max_rounds {
                    queue.push(wake_at, v);
                } else {
                    // Sleeping beyond the horizon without finishing: the run
                    // will be reported incomplete when the queue drains.
                    queue.push(self.config.max_rounds, v);
                }
            }

            // Phase 2: resolve the channel and deliver feedback. The
            // transmit staging (`tx_stamp`/`tx_msg`) is frozen for the
            // whole phase, so each node's feedback is a pure function of
            // shared read-only state plus its own (round, node)-keyed
            // fade stream — shardable, with the per-node counter
            // contributions folded commutatively in the serial merge.
            let sender_cd = self.config.channel == ChannelModel::BeepingSenderCd;
            tx_out.resize_with(transmitters.len(), Delivery::default);
            {
                let tx_stamp = &tx_stamp;
                let jam_from = &jam_from;
                let jam_until = &jam_until;
                let resolved = &resolved;
                let act_chan = &act_chan;
                let jam_mask = &jam_mask;
                shard_slices(
                    &transmitters,
                    0,
                    &mut nodes,
                    &mut rngs,
                    &mut tx_out,
                    par,
                    &|v: NodeId, node: &mut P, rng: &mut NodeRng, out: &mut Delivery| {
                        let mut d = Delivery::default();
                        let my_chan = if multi { act_chan[v] } else { 0 };
                        // Sender-side collision detection (BeepingSenderCd
                        // only): a beeping node hears a beep iff some
                        // neighbor's signal — real beep on its channel,
                        // wideband jammer noise, or a globally jammed
                        // channel — survives fading.
                        d.feedback =
                            if !sender_cd {
                                Feedback::Sent
                            } else if has_dormancy && resolved.is_dormant(v, round) {
                                Feedback::Sent // dead radio: can't hear either
                            } else if has_channel_jams && jam_mask[my_chan as usize] {
                                Feedback::Beep // the adversary floods the channel
                            } else if listener_slow {
                                let mut fade_rng = lossy.then(|| {
                                    if multi && my_chan != 0 {
                                        mc_fade_stream(mc_fade_seed, my_chan, round, v)
                                    } else {
                                        fade_stream(fade_seed, round, v)
                                    }
                                });
                                let mut beep = false;
                                for &u in self.graph.neighbors(v) {
                                    let real =
                                        tx_stamp[u] == round && (!multi || act_chan[u] == my_chan);
                                    let jam =
                                        has_jammers && jam_from[u] <= round && round < jam_until[u];
                                    if !(real || jam) {
                                        continue;
                                    }
                                    if let Some(fr) = fade_rng.as_mut() {
                                        if rand::Rng::gen_bool(fr, loss) {
                                            d.faded += 1;
                                            continue;
                                        }
                                    }
                                    beep = true;
                                    break;
                                }
                                if beep {
                                    Feedback::Beep
                                } else {
                                    Feedback::Sent
                                }
                            } else if self.graph.neighbors(v).iter().any(|&u| {
                                tx_stamp[u] == round && (!multi || act_chan[u] == my_chan)
                            }) {
                                Feedback::Beep
                            } else {
                                Feedback::Sent
                            };
                        node.feedback(round, d.feedback, rng);
                        *out = d;
                    },
                );
            }
            rx_out.resize_with(listeners.len(), Delivery::default);
            {
                let tx_stamp = &tx_stamp;
                let tx_msg = &tx_msg;
                let jam_from = &jam_from;
                let jam_until = &jam_until;
                let resolved = &resolved;
                let act_chan = &act_chan;
                let jam_mask = &jam_mask;
                let channel = self.config.channel;
                shard_slices(
                    &listeners,
                    0,
                    &mut nodes,
                    &mut rngs,
                    &mut rx_out,
                    par,
                    &|v: NodeId, node: &mut P, rng: &mut NodeRng, out: &mut Delivery| {
                        let mut d = Delivery::default();
                        let my_chan = if multi { act_chan[v] } else { 0 };
                        d.feedback = if has_dormancy && resolved.is_dormant(v, round) {
                            // Dead radio: arrivals are not even scanned.
                            Feedback::Silence
                        } else if has_channel_jams && jam_mask[my_chan as usize] {
                            // Globally jammed channel: undecodable noise
                            // for every listener tuned to it, before any
                            // neighborhood physics (no fade draws are
                            // consumed — the noise floor drowns the
                            // channel regardless of what arrives).
                            if want_metrics {
                                d.collisions = 1;
                                d.jammed = 1;
                            }
                            match channel {
                                ChannelModel::Cd => Feedback::Collision,
                                ChannelModel::NoCd => Feedback::Silence,
                                ChannelModel::Beeping | ChannelModel::BeepingSenderCd => {
                                    Feedback::Beep
                                }
                            }
                        } else if listener_slow {
                            // Slow path: full neighborhood scan with
                            // per-edge fading and jammer noise; feedback
                            // is derived from the *surviving* arrivals.
                            let mut fade_rng = lossy.then(|| {
                                if multi && my_chan != 0 {
                                    mc_fade_stream(mc_fade_seed, my_chan, round, v)
                                } else {
                                    fade_stream(fade_seed, round, v)
                                }
                            });
                            let mut pre = 0u32;
                            let mut surviving = 0u32;
                            let mut noise = false;
                            let mut heard = Message::unary();
                            for &u in self.graph.neighbors(v) {
                                let real =
                                    tx_stamp[u] == round && (!multi || act_chan[u] == my_chan);
                                let jam =
                                    has_jammers && jam_from[u] <= round && round < jam_until[u];
                                if !(real || jam) {
                                    continue;
                                }
                                pre += 1;
                                if let Some(fr) = fade_rng.as_mut() {
                                    if rand::Rng::gen_bool(fr, loss) {
                                        d.faded += 1;
                                        continue;
                                    }
                                }
                                surviving += 1;
                                if jam {
                                    noise = true;
                                } else if surviving == 1 {
                                    heard = tx_msg[u];
                                }
                            }
                            if want_metrics {
                                if surviving >= 2 || noise {
                                    d.collisions = 1;
                                } else if surviving == 1 {
                                    d.receptions = 1;
                                }
                                if noise {
                                    d.jammed = 1;
                                }
                                if pre > 0 && surviving == 0 {
                                    d.lost = 1;
                                }
                            }
                            match (channel, surviving) {
                                (_, 0) => Feedback::Silence,
                                (ChannelModel::Beeping | ChannelModel::BeepingSenderCd, _) => {
                                    Feedback::Beep
                                }
                                (_, 1) if !noise => Feedback::Heard(heard),
                                (ChannelModel::Cd, _) => Feedback::Collision,
                                (ChannelModel::NoCd, _) => Feedback::Silence,
                            }
                        } else {
                            // Fast path (no loss, no jammers): early-exit
                            // at the second arrival.
                            let mut count = 0u32;
                            let mut heard = Message::unary();
                            for &u in self.graph.neighbors(v) {
                                if tx_stamp[u] == round && (!multi || act_chan[u] == my_chan) {
                                    count += 1;
                                    if count == 1 {
                                        heard = tx_msg[u];
                                    } else {
                                        break;
                                    }
                                }
                            }
                            if want_metrics {
                                match count {
                                    0 => {}
                                    1 => d.receptions = 1,
                                    _ => d.collisions = 1,
                                }
                            }
                            match (channel, count) {
                                (_, 0) => Feedback::Silence,
                                (ChannelModel::Beeping | ChannelModel::BeepingSenderCd, _) => {
                                    Feedback::Beep
                                }
                                (_, 1) => Feedback::Heard(heard),
                                (ChannelModel::Cd, _) => Feedback::Collision,
                                (ChannelModel::NoCd, _) => Feedback::Silence,
                            }
                        };
                        node.feedback(round, d.feedback, rng);
                        *out = d;
                    },
                );
            }

            // Serial merge: fold the per-node contributions into the
            // round counters and emit feedback trace events, both in
            // ascending node order — exact integer sums, so the totals
            // (and the trace stream) are shard-independent.
            let mut collisions = 0u32;
            let mut receptions = 0u32;
            let mut lost_receptions = 0u32;
            let mut faded_edges = 0u32;
            let mut jammed_receptions = 0u32;
            if want_chan_metrics {
                chan_listen.iter_mut().for_each(|c| *c = 0);
                chan_coll.iter_mut().for_each(|c| *c = 0);
                chan_rx.iter_mut().for_each(|c| *c = 0);
            }
            for (i, &v) in transmitters.iter().enumerate() {
                let d = tx_out[i];
                faded_edges += d.faded;
                if record_feedback {
                    trace.record(TraceEvent::Fed {
                        round,
                        node: v,
                        feedback: d.feedback,
                    });
                }
            }
            for (i, &v) in listeners.iter().enumerate() {
                let d = rx_out[i];
                collisions += d.collisions;
                receptions += d.receptions;
                lost_receptions += d.lost;
                faded_edges += d.faded;
                jammed_receptions += d.jammed;
                if want_chan_metrics {
                    let c = act_chan[v] as usize;
                    chan_listen[c] += 1;
                    chan_coll[c] += d.collisions;
                    chan_rx[c] += d.receptions;
                }
                if record_feedback {
                    trace.record(TraceEvent::Fed {
                        round,
                        node: v,
                        feedback: d.feedback,
                    });
                }
            }
            if want_chan_metrics {
                for c in 0..fc {
                    channel_timeline.push(ChannelRoundMetrics {
                        round,
                        channel: c as u16,
                        jammed: has_channel_jams && jam_mask[c],
                        transmitting: chan_tx[c],
                        listening: chan_listen[c],
                        collisions: chan_coll[c],
                        receptions: chan_rx[c],
                    });
                }
            }

            // Phase 3: retire finished awake nodes, requeue the rest.
            for &v in transmitters.iter().chain(listeners.iter()) {
                let changed = self.note_status(
                    &mut statuses,
                    &nodes,
                    v,
                    round,
                    &mut meters,
                    trace,
                    mask,
                    &mut acc,
                    &mut reopened,
                );
                conv_dirty |= changed && want_conv;
                if nodes[v].finished() {
                    meters[v].record_finished(round);
                    finished_cum += 1;
                    if record_finish {
                        trace.record(TraceEvent::Finished { round, node: v });
                    }
                    if has_recovery && win_cursor[v] < resolved.windows_of(v).len() {
                        // Park instead of retiring: a future down window
                        // will wipe this node back to life.
                        parked.set(v);
                        queue.push(resolved.windows_of(v)[win_cursor[v]].0, v);
                    } else {
                        live -= 1;
                    }
                } else {
                    queue.push(round + 1, v);
                }
            }

            // Close the round's metrics record (aggregation is a handful of
            // counter folds; skipped entirely unless someone asked).
            if want_metrics {
                let jamming = if has_jammers {
                    resolved
                        .jammer_list
                        .iter()
                        .filter(|&&u| jam_from[u] <= round && round < jam_until[u])
                        .count() as u32
                } else {
                    0
                };
                let m = acc.finish_round(RoundCounters {
                    round,
                    n,
                    finished_before,
                    crashed_before,
                    jamming,
                    transmitting: transmitters.len() as u32,
                    listening: listeners.len() as u32,
                    collisions,
                    receptions,
                    lost_receptions,
                    faded_edges,
                    jammed_receptions,
                    recovered: recovered_cum,
                    joined: joined_cum,
                    jammed_channels: jammed_now,
                });
                if mask.contains(EventKind::RoundMetrics) {
                    trace.record(TraceEvent::RoundEnd { metrics: m });
                }
                if self.config.collect_metrics {
                    timeline.push(m);
                }
            }

            // Convergence: re-evaluate the live-subgraph MIS check on
            // rounds whose events may have changed the verdict, then apply
            // the policy's early stop / watchdog (module docs).
            if want_conv {
                if conv_dirty {
                    conv_dirty = false;
                    if live_mis_ok(self.graph, &statuses, &faulty) {
                        conv_candidate.get_or_insert(round);
                    } else {
                        conv_candidate = None;
                    }
                }
                if let Some(policy) = self.config.convergence {
                    if last_fault != u64::MAX {
                        if let Some(c) = conv_candidate {
                            let eff = c.max(last_fault);
                            if round >= eff.saturating_add(policy.stability) {
                                let metrics = self
                                    .config
                                    .collect_metrics
                                    .then(|| std::mem::take(&mut timeline));
                                let channel_metrics = want_chan_metrics
                                    .then(|| std::mem::take(&mut channel_timeline));
                                return self.finish_report(
                                    nodes,
                                    meters,
                                    faulty,
                                    round + 1,
                                    true,
                                    message_bits,
                                    metrics,
                                    channel_metrics,
                                    Some(eff),
                                    false,
                                );
                            }
                        }
                        if let Some(q) = policy.quiescence {
                            if round >= last_fault.saturating_add(q) {
                                let metrics = self
                                    .config
                                    .collect_metrics
                                    .then(|| std::mem::take(&mut timeline));
                                let channel_metrics = want_chan_metrics
                                    .then(|| std::mem::take(&mut channel_timeline));
                                return self.finish_report(
                                    nodes,
                                    meters,
                                    faulty,
                                    round + 1,
                                    false,
                                    message_bits,
                                    metrics,
                                    channel_metrics,
                                    None,
                                    true,
                                );
                            }
                        }
                    }
                }
            }
        }

        let rounds = if n == 0 { 0 } else { last_round_processed + 1 };
        let metrics = self.config.collect_metrics.then_some(timeline);
        let channel_metrics = want_chan_metrics.then_some(channel_timeline);
        let converged_at = anchored_convergence(conv_candidate, last_fault, rounds);
        self.finish_report(
            nodes,
            meters,
            faulty,
            rounds,
            true,
            message_bits,
            metrics,
            channel_metrics,
            converged_at,
            false,
        )
    }

    /// Registers a node's (possibly changed) status: stamps decision
    /// times, maintains the cumulative counters, and emits the trace
    /// event. Returns whether the status changed (the caller marks the
    /// convergence check dirty).
    #[allow(clippy::too_many_arguments)]
    fn note_status<P: Protocol, T: TraceSink>(
        &self,
        statuses: &mut [NodeStatus],
        nodes: &[P],
        v: NodeId,
        round: u64,
        meters: &mut [EnergyMeter],
        trace: &mut T,
        mask: EventMask,
        acc: &mut MetricsAccumulator,
        reopened: &mut BitSet,
    ) -> bool {
        let s = nodes[v].status();
        if s == statuses[v] {
            return false;
        }
        let was = statuses[v];
        statuses[v] = s;
        // Only the *first* transition into a decided status stamps the
        // decision round; a protocol that revises its decision
        // (InMis → OutMis) keeps its original decision time. A protocol
        // that *revokes* its decision entirely (decided → Undecided, as a
        // self-healing wrapper does when it detects a violation) reopens
        // the stamp: the eventual re-decision round is the honest one.
        if s.is_decided() && !was.is_decided() {
            meters[v].record_decided(round);
        } else if !s.is_decided() && was.is_decided() {
            meters[v].record_reopened();
        }
        // The cumulative counters only exist for metrics consumers.
        // `reopened` is allocated exactly when metrics are wanted, so its
        // emptiness doubles as the flag — and keeps the counters from
        // underflowing in non-metrics runs, whose initial decided
        // population is never folded into the accumulator.
        if !reopened.is_empty() {
            if s == NodeStatus::InMis {
                acc.joined_mis += 1;
            } else if was == NodeStatus::InMis {
                acc.joined_mis -= 1;
            }
            if s.is_decided() && !was.is_decided() {
                acc.decided += 1;
                if reopened.get(v) {
                    reopened.clear(v);
                    acc.repairing -= 1;
                }
            } else if !s.is_decided() && was.is_decided() {
                acc.decided -= 1;
                if !reopened.get(v) {
                    reopened.set(v);
                    acc.repairing += 1;
                }
            }
        }
        if mask.contains(EventKind::StatusChanged) {
            trace.record(TraceEvent::StatusChanged {
                round,
                node: v,
                status: s,
            });
        }
        true
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_report<P: Protocol>(
        &self,
        nodes: Vec<P>,
        meters: Vec<EnergyMeter>,
        faulty: BitSet,
        rounds: u64,
        completed: bool,
        message_bits: u32,
        metrics: Option<Vec<RoundMetrics>>,
        channel_metrics: Option<Vec<ChannelRoundMetrics>>,
        converged_at: Option<u64>,
        watchdog_fired: bool,
    ) -> RunReport {
        let n = nodes.len();
        RunReport {
            statuses: nodes.iter().map(|p| p.status()).collect(),
            meters,
            faulty: faulty.to_vec_bools(n),
            rounds,
            completed,
            converged_at,
            watchdog_fired,
            channel: self.config.channel,
            seed: self.config.seed,
            message_bits,
            metrics,
            channel_metrics,
        }
    }
}

/// Whether `statuses` restricted to non-faulty nodes is a maximal
/// independent set of the subgraph they induce: every live node decided,
/// no two adjacent live `InMis` nodes, every live `OutMis` node covered by
/// a live `InMis` neighbor. This is the per-round core of
/// [`RunReport::verify_mis`](crate::RunReport::verify_mis), kept
/// allocation-free because convergence tracking runs it on every dirty
/// round.
fn live_mis_ok(graph: &Graph, statuses: &[NodeStatus], faulty: &BitSet) -> bool {
    let is_faulty = |v: usize| faulty.get(v);
    for v in 0..graph.len() {
        if is_faulty(v) {
            continue;
        }
        match statuses[v] {
            NodeStatus::Undecided => return false,
            NodeStatus::InMis => {
                for &u in graph.neighbors(v) {
                    if u > v && !is_faulty(u) && statuses[u] == NodeStatus::InMis {
                        return false;
                    }
                }
            }
            NodeStatus::OutMis => {
                if !graph
                    .neighbors(v)
                    .iter()
                    .any(|&u| !is_faulty(u) && statuses[u] == NodeStatus::InMis)
                {
                    return false;
                }
            }
        }
    }
    true
}

/// Maps the raw convergence candidate (first round of the final unbroken
/// correct streak) to the reported `converged_at`: the streak only counts
/// from the last scheduled fault onwards, clamped to the run's length for
/// faults the run ended before reaching. Plans with continuous fault
/// processes have no last fault (`u64::MAX`) and report the raw candidate.
fn anchored_convergence(candidate: Option<u64>, last_fault: u64, rounds: u64) -> Option<u64> {
    let anchor = if last_fault == u64::MAX {
        0
    } else {
        last_fault.min(rounds)
    };
    candidate.map(|c| c.max(anchor))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Message;
    use mis_graphs::generators;

    #[test]
    fn fingerprint_covers_every_config_ingredient() {
        let base = SimConfig::new(ChannelModel::Cd);
        let variants = [
            base.clone().with_seed(7),
            base.clone().with_max_rounds(10),
            base.clone().with_message_bits(32),
            base.clone().with_round_metrics(),
            base.clone().with_engine_mode(EngineMode::Dense),
            base.clone().with_loss_probability(0.5),
            base.clone().with_channels(4),
            SimConfig::new(ChannelModel::NoCd),
        ];
        for v in &variants {
            assert_ne!(v.fingerprint(), base.fingerprint(), "{v:?}");
        }
        assert_eq!(base.fingerprint(), base.clone().fingerprint());
    }

    #[test]
    fn fingerprint_is_thread_count_invariant() {
        // Thread count is an execution strategy with byte-identical
        // results, not an input: a warm experiment cache must keep
        // hitting when a rerun adds `--threads` (see EXPERIMENTS.md).
        let base = SimConfig::new(ChannelModel::Cd).with_seed(9);
        assert_eq!(
            base.fingerprint(),
            base.clone().with_threads(8).fingerprint()
        );
        // And the rendered form matches the CACHE_SCHEMA 3 layout: no
        // `threads` field leaks into cache keys, while the channel count
        // sits right after the channel model.
        assert!(!base.fingerprint().contains("threads"));
        assert!(base
            .fingerprint()
            .starts_with("SimConfig { channel: Cd, channels: 1, max_rounds:"));
    }

    /// Transmits in round 0 iff `id` is even, listens otherwise; records
    /// what it saw; finishes after one round.
    struct Probe {
        transmit: bool,
        saw: Option<Feedback>,
    }

    impl Protocol for Probe {
        fn act(&mut self, _round: u64, _rng: &mut NodeRng) -> Action {
            if self.transmit {
                Action::Transmit(Message::unary())
            } else {
                Action::Listen
            }
        }
        fn feedback(&mut self, _round: u64, fb: Feedback, _rng: &mut NodeRng) {
            self.saw = Some(fb);
        }
        fn status(&self) -> NodeStatus {
            NodeStatus::OutMis
        }
        fn finished(&self) -> bool {
            self.saw.is_some()
        }
    }

    fn probe_run(
        g: &Graph,
        channel: ChannelModel,
        transmit: impl Fn(NodeId) -> bool + Sync,
    ) -> Vec<Option<Feedback>> {
        probe_run_config(g, SimConfig::new(channel), transmit)
    }

    fn probe_run_config(
        g: &Graph,
        config: SimConfig,
        transmit: impl Fn(NodeId) -> bool + Sync,
    ) -> Vec<Option<Feedback>> {
        let mut observed: Vec<Option<Feedback>> = vec![None; g.len()];
        let mut trace = crate::trace::VecTrace::new();
        let report = Simulator::new(g, config).run_traced(
            |v, _| Probe {
                transmit: transmit(v),
                saw: None,
            },
            &mut trace,
        );
        assert!(report.completed);
        for e in &trace.events {
            if let TraceEvent::Fed { node, feedback, .. } = e {
                observed[*node] = Some(*feedback);
            }
        }
        observed
    }

    #[test]
    fn single_transmitter_is_heard() {
        // Path 0-1-2: node 0 transmits, others listen.
        let g = generators::path(3);
        let obs = probe_run(&g, ChannelModel::Cd, |v| v == 0);
        assert_eq!(obs[0], Some(Feedback::Sent));
        assert_eq!(obs[1], Some(Feedback::Heard(Message::unary())));
        assert_eq!(obs[2], Some(Feedback::Silence)); // not adjacent to 0
    }

    #[test]
    fn collision_semantics_cd_vs_nocd_vs_beeping() {
        // Star: both leaves 1 and 2 transmit; hub 0 listens.
        let g = generators::star(3);
        let obs = probe_run(&g, ChannelModel::Cd, |v| v != 0);
        assert_eq!(obs[0], Some(Feedback::Collision));

        let obs = probe_run(&g, ChannelModel::NoCd, |v| v != 0);
        assert_eq!(obs[0], Some(Feedback::Silence));

        let obs = probe_run(&g, ChannelModel::Beeping, |v| v != 0);
        assert_eq!(obs[0], Some(Feedback::Beep));
    }

    #[test]
    fn sender_side_cd_hears_concurrent_beeps() {
        // Triangle: all three beep. With sender CD each hears a beep; in
        // plain beeping each only learns Sent.
        let g = generators::clique(3);
        let obs = probe_run(&g, ChannelModel::BeepingSenderCd, |_| true);
        for o in obs.iter().take(3) {
            assert_eq!(*o, Some(Feedback::Beep));
        }
        let obs = probe_run(&g, ChannelModel::Beeping, |_| true);
        for o in obs.iter().take(3) {
            assert_eq!(*o, Some(Feedback::Sent));
        }
        // A lone beeper with sender CD hears nothing extra.
        let g = generators::star(3);
        let obs = probe_run(&g, ChannelModel::BeepingSenderCd, |v| v == 1);
        assert_eq!(obs[1], Some(Feedback::Sent));
        assert_eq!(obs[0], Some(Feedback::Beep));
    }

    #[test]
    fn beeping_single_sender_is_beep_not_message() {
        let g = generators::star(3);
        let obs = probe_run(&g, ChannelModel::Beeping, |v| v == 1);
        assert_eq!(obs[0], Some(Feedback::Beep));
        assert_eq!(obs[2], Some(Feedback::Silence)); // leaves not adjacent
    }

    #[test]
    fn transmitter_does_not_hear_itself_or_others() {
        // Half-duplex: a transmitter only learns `Sent`.
        let g = generators::clique(4);
        let obs = probe_run(&g, ChannelModel::Cd, |_| true);
        for o in obs.iter().take(4) {
            assert_eq!(*o, Some(Feedback::Sent));
        }
    }

    #[test]
    fn isolated_listener_hears_silence() {
        let g = generators::empty(2);
        let obs = probe_run(&g, ChannelModel::Cd, |v| v == 0);
        assert_eq!(obs[1], Some(Feedback::Silence));
    }

    /// Sleeps for `k` rounds, then transmits once and finishes.
    struct Sleeper {
        wake: u64,
        done: bool,
    }
    impl Protocol for Sleeper {
        fn act(&mut self, round: u64, _rng: &mut NodeRng) -> Action {
            if round < self.wake {
                Action::Sleep { wake_at: self.wake }
            } else {
                Action::Transmit(Message::unary())
            }
        }
        fn feedback(&mut self, _round: u64, _fb: Feedback, _rng: &mut NodeRng) {
            self.done = true;
        }
        fn status(&self) -> NodeStatus {
            NodeStatus::InMis
        }
        fn finished(&self) -> bool {
            self.done
        }
    }

    #[test]
    fn sleep_skipping_counts_rounds_but_not_energy() {
        let g = generators::empty(3);
        let report = Simulator::new(&g, SimConfig::new(ChannelModel::Cd)).run(|v, _| Sleeper {
            wake: 1000 * (v as u64 + 1),
            done: false,
        });
        assert!(report.completed);
        assert_eq!(report.rounds, 3001);
        for v in 0..3 {
            assert_eq!(report.meters[v].energy(), 1);
            assert_eq!(report.meters[v].finished_at, Some(1000 * (v as u64 + 1)));
        }
    }

    #[test]
    fn max_rounds_caps_incomplete_runs() {
        struct Forever;
        impl Protocol for Forever {
            fn act(&mut self, _round: u64, _rng: &mut NodeRng) -> Action {
                Action::Listen
            }
            fn feedback(&mut self, _round: u64, _fb: Feedback, _rng: &mut NodeRng) {}
            fn status(&self) -> NodeStatus {
                NodeStatus::Undecided
            }
            fn finished(&self) -> bool {
                false
            }
        }
        let g = generators::empty(2);
        let report = Simulator::new(&g, SimConfig::new(ChannelModel::Cd).with_max_rounds(50))
            .run(|_, _| Forever);
        assert!(!report.completed);
        assert_eq!(report.rounds, 50);
        assert_eq!(report.meters[0].energy(), 50);
    }

    #[test]
    fn empty_graph_zero_rounds() {
        let g = generators::empty(0);
        let report = Simulator::new(&g, SimConfig::new(ChannelModel::Cd)).run(|_, _| Probe {
            transmit: false,
            saw: None,
        });
        assert!(report.completed);
        assert_eq!(report.rounds, 0);
    }

    #[test]
    fn runs_are_reproducible_by_seed() {
        use rand::Rng;
        /// Random protocol: transmits with probability 1/2 for 20 rounds.
        struct Coin {
            rounds: u64,
        }
        impl Protocol for Coin {
            fn act(&mut self, _round: u64, rng: &mut NodeRng) -> Action {
                if rng.gen_bool(0.5) {
                    Action::Transmit(Message::unary())
                } else {
                    Action::Listen
                }
            }
            fn feedback(&mut self, _round: u64, _fb: Feedback, _rng: &mut NodeRng) {
                self.rounds += 1;
            }
            fn status(&self) -> NodeStatus {
                NodeStatus::OutMis
            }
            fn finished(&self) -> bool {
                self.rounds >= 20
            }
        }
        let g = generators::gnp(40, 0.2, 1);
        let run = |seed| {
            Simulator::new(&g, SimConfig::new(ChannelModel::Cd).with_seed(seed))
                .run(|_, _| Coin { rounds: 0 })
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a.meters, b.meters);
        assert_ne!(a.meters, c.meters);
    }

    #[test]
    #[should_panic(expected = "RADIO-CONGEST")]
    fn oversized_message_panics() {
        struct Big;
        impl Protocol for Big {
            fn act(&mut self, _round: u64, _rng: &mut NodeRng) -> Action {
                Action::Transmit(Message::with_payload(u64::MAX))
            }
            fn feedback(&mut self, _round: u64, _fb: Feedback, _rng: &mut NodeRng) {}
            fn status(&self) -> NodeStatus {
                NodeStatus::Undecided
            }
            fn finished(&self) -> bool {
                false
            }
        }
        let g = generators::empty(1);
        let _ = Simulator::new(&g, SimConfig::new(ChannelModel::Cd).with_message_bits(16))
            .run(|_, _| Big);
    }

    #[test]
    fn loss_injection_fades_receptions() {
        // Star, leaf 1 transmits, hub listens, loss = 1.0: the hub never
        // hears anything.
        let g = generators::star(3);
        let config = SimConfig::new(ChannelModel::Cd)
            .with_loss_probability(1.0)
            .with_seed(3);
        let obs = probe_run_config(&g, config, |v| v == 1);
        assert_eq!(obs[0], Some(Feedback::Silence));
    }

    #[test]
    fn total_loss_silences_every_channel_model() {
        // The old loss model only faded single-transmitter receptions, so
        // a multi-beeper Beep (and CD Collision) survived loss = 1.0. The
        // per-edge model fades every arrival: whatever the channel model
        // and however many neighbors transmit, every listener hears
        // Silence — and every BeepingSenderCd sender hears only Sent.
        let g = generators::clique(5);
        for channel in [
            ChannelModel::Cd,
            ChannelModel::NoCd,
            ChannelModel::Beeping,
            ChannelModel::BeepingSenderCd,
        ] {
            let config = SimConfig::new(channel)
                .with_loss_probability(1.0)
                .with_seed(13);
            // Three transmitters per listener: a guaranteed collision /
            // multi-beep without loss.
            let obs = probe_run_config(&g, config, |v| v < 3);
            for (v, o) in obs.iter().enumerate() {
                if v < 3 {
                    assert_eq!(*o, Some(Feedback::Sent), "{channel} sender {v}");
                } else {
                    assert_eq!(*o, Some(Feedback::Silence), "{channel} listener {v}");
                }
            }
        }
    }

    #[test]
    fn loss_injection_statistics() {
        // Repeated single-sender rounds at loss 0.3: the hub hears ~70%.
        struct Tx(u32);
        impl Protocol for Tx {
            fn act(&mut self, _round: u64, _rng: &mut NodeRng) -> Action {
                Action::Transmit(Message::unary())
            }
            fn feedback(&mut self, _round: u64, _fb: Feedback, _rng: &mut NodeRng) {
                self.0 += 1;
            }
            fn status(&self) -> NodeStatus {
                NodeStatus::OutMis
            }
            fn finished(&self) -> bool {
                self.0 >= 500
            }
        }
        struct Rx {
            rounds: u32,
        }
        impl Protocol for Rx {
            fn act(&mut self, _round: u64, _rng: &mut NodeRng) -> Action {
                Action::Listen
            }
            fn feedback(&mut self, _round: u64, _fb: Feedback, _rng: &mut NodeRng) {
                self.rounds += 1;
            }
            fn status(&self) -> NodeStatus {
                NodeStatus::OutMis
            }
            fn finished(&self) -> bool {
                self.rounds >= 500
            }
        }
        let g = generators::path(2);
        let config = SimConfig::new(ChannelModel::Cd)
            .with_loss_probability(0.3)
            .with_seed(9);
        let mut trace = crate::trace::VecTrace::new();
        let _ = Simulator::new(&g, config).run_traced(
            |v, _| -> Box<dyn Protocol + Send> {
                if v == 0 {
                    Box::new(Tx(0))
                } else {
                    Box::new(Rx { rounds: 0 })
                }
            },
            &mut trace,
        );
        let mut heard = 0;
        let mut total = 0;
        for e in &trace.events {
            if let TraceEvent::Fed {
                node: 1, feedback, ..
            } = e
            {
                total += 1;
                if feedback.heard_activity() {
                    heard += 1;
                }
            }
        }
        assert_eq!(total, 500);
        let rate = heard as f64 / total as f64;
        assert!((0.6..0.8).contains(&rate), "heard rate {rate}");
    }

    #[test]
    fn loss_zero_is_bit_identical() {
        let g = generators::gnp(30, 0.2, 2);
        let base = SimConfig::new(ChannelModel::Cd).with_seed(5);
        let lossy0 = base.clone().with_loss_probability(0.0);
        let a = Simulator::new(&g, base).run(|_, _| Probe {
            transmit: false,
            saw: None,
        });
        let b = Simulator::new(&g, lossy0).run(|_, _| Probe {
            transmit: false,
            saw: None,
        });
        assert_eq!(a, b);
    }

    /// Transmits every round; finishes after `budget` feedbacks.
    struct Chatter {
        budget: u32,
        seen: u32,
    }
    impl Protocol for Chatter {
        fn act(&mut self, _round: u64, _rng: &mut NodeRng) -> Action {
            Action::Transmit(Message::unary())
        }
        fn feedback(&mut self, _round: u64, _fb: Feedback, _rng: &mut NodeRng) {
            self.seen += 1;
        }
        fn status(&self) -> NodeStatus {
            NodeStatus::OutMis
        }
        fn finished(&self) -> bool {
            self.seen >= self.budget
        }
    }

    #[test]
    fn crash_stop_retires_node_and_marks_it_faulty() {
        let g = generators::empty(3);
        let config =
            SimConfig::new(ChannelModel::Cd).with_faults(FaultPlan::none().with_crash(1, 2));
        let mut trace = crate::trace::VecTrace::new();
        let report = Simulator::new(&g, config)
            .run_traced(|_, _| Chatter { budget: 5, seen: 0 }, &mut trace);
        assert!(report.completed);
        // The crashed node acted in rounds 0 and 1 only.
        assert_eq!(report.meters[1].energy(), 2);
        assert_eq!(report.meters[0].energy(), 5);
        assert_eq!(report.faulty, vec![false, true, false]);
        assert_eq!(report.meters[1].finished_at, None);
        let crash_events: Vec<_> = trace
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    TraceEvent::Fault {
                        fault: FaultKind::Crash,
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(crash_events.len(), 1);
        assert_eq!(crash_events[0].round(), 2);
        assert_eq!(crash_events[0].node(), Some(1));
    }

    #[test]
    fn jammer_degrades_single_reception_per_channel_model() {
        // Star: leaf 1 transmits, hub 0 listens, leaf 2 jams. The hub's
        // lone real message is polluted into the model's collision symbol.
        let g = generators::star(3);
        for (channel, expect) in [
            (ChannelModel::Cd, Feedback::Collision),
            (ChannelModel::NoCd, Feedback::Silence),
            (ChannelModel::Beeping, Feedback::Beep),
        ] {
            let config = SimConfig::new(channel).with_faults(FaultPlan::none().with_jammer(2));
            let obs = probe_run_config(&g, config, |v| v == 1);
            assert_eq!(obs[0], Some(expect), "{channel}");
            // The jammer runs no protocol and gets no feedback.
            assert_eq!(obs[2], None, "{channel}");
        }
    }

    #[test]
    fn jammer_alone_jams_every_round_it_is_awake() {
        // Path 0-1: node 1 is a jammer; node 0 listens for 4 rounds and
        // hears a collision every round (CD model).
        let g = generators::path(2);
        let config = SimConfig::new(ChannelModel::Cd).with_faults(FaultPlan::none().with_jammer(1));
        let mut trace = crate::trace::VecTrace::new();
        let report = Simulator::new(&g, config).run_traced(
            |v, _| -> Box<dyn Protocol + Send> {
                if v == 0 {
                    Box::new(Rx4::default())
                } else {
                    // Never polled: jammers don't run their protocol.
                    Box::new(Chatter { budget: 1, seen: 0 })
                }
            },
            &mut trace,
        );
        assert!(report.completed);
        assert_eq!(report.faulty, vec![false, true]);
        assert_eq!(
            report.meters[1].energy(),
            0,
            "jammers spend no metered energy"
        );
        let fed: Vec<Feedback> = trace
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Fed {
                    node: 0, feedback, ..
                } => Some(*feedback),
                _ => None,
            })
            .collect();
        assert_eq!(fed, vec![Feedback::Collision; 4]);
        // The jammer announced itself once, up-front.
        assert!(trace.events.iter().any(|e| matches!(
            e,
            TraceEvent::Fault {
                node: 1,
                fault: FaultKind::Jam,
                ..
            }
        )));
    }

    /// Listens for 4 rounds, then finishes.
    #[derive(Default)]
    struct Rx4 {
        seen: u32,
    }
    impl Protocol for Rx4 {
        fn act(&mut self, _round: u64, _rng: &mut NodeRng) -> Action {
            Action::Listen
        }
        fn feedback(&mut self, _round: u64, _fb: Feedback, _rng: &mut NodeRng) {
            self.seen += 1;
        }
        fn status(&self) -> NodeStatus {
            NodeStatus::OutMis
        }
        fn finished(&self) -> bool {
            self.seen >= 4
        }
    }

    #[test]
    fn dormancy_kills_the_radio_but_not_the_energy() {
        // Path 0-1: node 0 transmits 5 rounds, node 1 listens 5 rounds.
        // Both are dormant for rounds 0..2 (probability 1, start 0, len 2):
        // node 1 hears silence while dormant, then real receptions.
        let g = generators::path(2);
        let config = SimConfig::new(ChannelModel::Cd)
            .with_faults(FaultPlan::none().with_dormancy(1.0, 0, 2));
        let mut trace = crate::trace::VecTrace::new();
        let report = Simulator::new(&g, config).run_traced(
            |v, _| -> Box<dyn Protocol + Send> {
                if v == 0 {
                    Box::new(Chatter { budget: 5, seen: 0 })
                } else {
                    Box::new(Rx5::default())
                }
            },
            &mut trace,
        );
        assert!(report.completed);
        // Energy is spent even while dormant.
        assert_eq!(report.meters[0].energy(), 5);
        assert_eq!(report.meters[1].energy(), 5);
        // Dormant nodes are degraded, not faulty: they still count for MIS.
        assert!(report.faulty.is_empty());
        let fed: Vec<Feedback> = trace
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Fed {
                    node: 1, feedback, ..
                } => Some(*feedback),
                _ => None,
            })
            .collect();
        assert_eq!(
            fed,
            vec![
                Feedback::Silence,
                Feedback::Silence,
                Feedback::Heard(Message::unary()),
                Feedback::Heard(Message::unary()),
                Feedback::Heard(Message::unary()),
            ]
        );
        // Each node surfaced its dormancy onset exactly once.
        let dormant_events: Vec<_> = trace
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    TraceEvent::Fault {
                        fault: FaultKind::Dormant,
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(dormant_events.len(), 2);
        assert!(dormant_events.iter().all(|e| e.round() == 0));
    }

    /// Listens for 5 rounds, then finishes.
    #[derive(Default)]
    struct Rx5 {
        seen: u32,
    }
    impl Protocol for Rx5 {
        fn act(&mut self, _round: u64, _rng: &mut NodeRng) -> Action {
            Action::Listen
        }
        fn feedback(&mut self, _round: u64, _fb: Feedback, _rng: &mut NodeRng) {
            self.seen += 1;
        }
        fn status(&self) -> NodeStatus {
            NodeStatus::OutMis
        }
        fn finished(&self) -> bool {
            self.seen >= 5
        }
    }

    #[test]
    fn fault_plan_runs_are_reproducible_by_seed() {
        let g = generators::gnp(24, 0.2, 3);
        let plan = FaultPlan::none()
            .with_loss(0.4)
            .with_random_crashes(3, 2)
            .with_random_jammers(2)
            .with_wake_window(6)
            .with_dormancy(0.3, 8, 4);
        let run = |seed: u64| {
            Simulator::new(
                &g,
                SimConfig::new(ChannelModel::Cd)
                    .with_seed(seed)
                    .with_faults(plan.clone())
                    .with_round_metrics(),
            )
            .run(|_, _| Chatter { budget: 8, seen: 0 })
        };
        let a = run(21);
        let b = run(21);
        let c = run(22);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.faulty.iter().filter(|&&f| f).count(), 5);
    }

    #[test]
    fn plan_wake_window_staggers_and_simulator_offsets_override() {
        // Plan-level explicit wake offsets behave like with_wake_offsets.
        let g = generators::empty(3);
        let config = SimConfig::new(ChannelModel::Cd).with_faults(
            FaultPlan::none().with_wake(crate::fault::WakePlan::Explicit(vec![0, 10, 25])),
        );
        let report = Simulator::new(&g, config.clone()).run(|_, _| Probe {
            transmit: true,
            saw: None,
        });
        assert_eq!(report.meters[1].finished_at, Some(10));
        assert_eq!(report.meters[2].finished_at, Some(25));
        // Simulator offsets take precedence over the plan's.
        let report = Simulator::new(&g, config)
            .with_wake_offsets(vec![0, 1, 2])
            .run(|_, _| Probe {
                transmit: true,
                saw: None,
            });
        assert_eq!(report.meters[1].finished_at, Some(1));
        assert_eq!(report.meters[2].finished_at, Some(2));
    }

    #[test]
    fn decided_at_keeps_the_first_decision() {
        // Revises its decision: InMis after round 0, OutMis after round 2.
        struct Flip {
            fed: u32,
        }
        impl Protocol for Flip {
            fn act(&mut self, _round: u64, _rng: &mut NodeRng) -> Action {
                Action::Listen
            }
            fn feedback(&mut self, _round: u64, _fb: Feedback, _rng: &mut NodeRng) {
                self.fed += 1;
            }
            fn status(&self) -> NodeStatus {
                match self.fed {
                    0 => NodeStatus::Undecided,
                    1 | 2 => NodeStatus::InMis,
                    _ => NodeStatus::OutMis,
                }
            }
            fn finished(&self) -> bool {
                self.fed >= 3
            }
        }
        let g = generators::empty(1);
        let report =
            Simulator::new(&g, SimConfig::new(ChannelModel::Cd)).run(|_, _| Flip { fed: 0 });
        assert!(report.completed);
        assert_eq!(report.statuses[0], NodeStatus::OutMis);
        // The decision round is the *first* transition into a decided
        // status (round 0), not the revision (round 2).
        assert_eq!(report.meters[0].decided_at, Some(0));
    }

    #[test]
    fn wake_offsets_delay_first_poll() {
        // Three isolated nodes with staggered wake-ups: each transmits in
        // its own first round and finishes; finish times equal the offsets.
        let g = generators::empty(3);
        let report = Simulator::new(&g, SimConfig::new(ChannelModel::Cd).with_seed(2))
            .with_wake_offsets(vec![0, 10, 25])
            .run(|_, _| Probe {
                transmit: true,
                saw: None,
            });
        assert!(report.completed);
        assert_eq!(report.meters[0].finished_at, Some(0));
        assert_eq!(report.meters[1].finished_at, Some(10));
        assert_eq!(report.meters[2].finished_at, Some(25));
        // Energy unaffected: one awake round each.
        assert!(report.meters.iter().all(|m| m.energy() == 1));
        assert_eq!(report.rounds, 26);
    }

    #[test]
    fn late_waker_misses_early_transmissions() {
        // Node 0 transmits at round 0 and leaves; node 1 wakes at round 5
        // and hears only silence — messages to sleepers are lost.
        let g = generators::path(2);
        let mut trace = crate::trace::VecTrace::new();
        let _ = Simulator::new(&g, SimConfig::new(ChannelModel::Cd).with_seed(1))
            .with_wake_offsets(vec![0, 5])
            .run_traced(
                |v, _| Probe {
                    transmit: v == 0,
                    saw: None,
                },
                &mut trace,
            );
        for e in &trace.events {
            if let TraceEvent::Fed {
                node: 1, feedback, ..
            } = e
            {
                assert_eq!(*feedback, Feedback::Silence);
            }
        }
    }

    #[test]
    #[should_panic(expected = "offsets length mismatch")]
    fn wake_offsets_length_checked() {
        let g = generators::empty(2);
        let _ = Simulator::new(&g, SimConfig::new(ChannelModel::Cd)).with_wake_offsets(vec![0]);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn loss_probability_validated() {
        let _ = SimConfig::new(ChannelModel::Cd).with_loss_probability(1.5);
    }

    #[test]
    #[should_panic(expected = "protocol bug")]
    fn sleeping_to_the_past_panics() {
        struct Bad;
        impl Protocol for Bad {
            fn act(&mut self, round: u64, _rng: &mut NodeRng) -> Action {
                Action::Sleep { wake_at: round }
            }
            fn feedback(&mut self, _round: u64, _fb: Feedback, _rng: &mut NodeRng) {}
            fn status(&self) -> NodeStatus {
                NodeStatus::Undecided
            }
            fn finished(&self) -> bool {
                false
            }
        }
        let g = generators::empty(1);
        let _ = Simulator::new(&g, SimConfig::new(ChannelModel::Cd)).run(|_, _| Bad);
    }

    #[test]
    fn metrics_timeline_invariants() {
        use rand::Rng;
        /// Random protocol: transmits/listens/sleeps at random; finishes
        /// after 15 awake rounds, deciding InMis for even ids.
        struct Jitter {
            awake: u32,
            even: bool,
        }
        impl Protocol for Jitter {
            fn act(&mut self, round: u64, rng: &mut NodeRng) -> Action {
                if self.awake >= 15 {
                    return Action::halt();
                }
                match rng.gen_range(0..3u8) {
                    0 => Action::Sleep {
                        wake_at: round + rng.gen_range(1..4u64),
                    },
                    1 => {
                        self.awake += 1;
                        Action::Transmit(Message::unary())
                    }
                    _ => {
                        self.awake += 1;
                        Action::Listen
                    }
                }
            }
            fn feedback(&mut self, _round: u64, _fb: Feedback, _rng: &mut NodeRng) {}
            fn status(&self) -> NodeStatus {
                if self.awake >= 15 {
                    if self.even {
                        NodeStatus::InMis
                    } else {
                        NodeStatus::OutMis
                    }
                } else {
                    NodeStatus::Undecided
                }
            }
            fn finished(&self) -> bool {
                self.awake >= 15
            }
        }
        let g = generators::gnp(30, 0.15, 4);
        let n = g.len() as u32;
        let config = SimConfig::new(ChannelModel::Cd)
            .with_seed(11)
            .with_round_metrics();
        let mut trace = crate::trace::VecTrace::new();
        let report = Simulator::new(&g, config).run_traced(
            |v, _| Jitter {
                awake: 0,
                even: v % 2 == 0,
            },
            &mut trace,
        );
        assert!(report.completed);
        let timeline = report.metrics.as_ref().expect("metrics requested");
        assert!(!timeline.is_empty());
        let mut prev_round = None;
        let mut prev_decided = 0;
        for m in timeline {
            // Population conservation: every node is transmitting,
            // listening, sleeping, jamming, crashed, or already finished.
            assert_eq!(m.node_count(), n, "round {}", m.round);
            // Rounds strictly increase; cumulative curves are monotone.
            if let Some(p) = prev_round {
                assert!(m.round > p);
            }
            prev_round = Some(m.round);
            assert!(m.decided >= prev_decided);
            prev_decided = m.decided;
            assert!(m.joined_mis <= m.decided);
            // A listener silenced by fading faded all its arrivals.
            assert!(m.lost_receptions <= m.faded_edges);
            // Fault-free run: no fault counter moves.
            assert_eq!(
                m.jamming + m.crashed + m.faded_edges + m.jammed_receptions,
                0
            );
        }
        // The final record's cumulative energy equals the meter totals.
        let last = timeline.last().unwrap();
        let metered: u64 = report.meters.iter().map(|mtr| mtr.energy()).sum();
        assert_eq!(last.cumulative_energy, metered);
        assert_eq!(last.decided, n);
        assert_eq!(last.joined_mis, 15);
        // The streamed RoundEnd events carry the identical records.
        let streamed: Vec<crate::metrics::RoundMetrics> = trace
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::RoundEnd { metrics } => Some(*metrics),
                _ => None,
            })
            .collect();
        assert_eq!(&streamed, timeline);
    }

    #[test]
    fn metrics_count_collisions_and_receptions() {
        // Star: both leaves transmit, hub listens → one physical collision.
        let g = generators::star(3);
        let config = SimConfig::new(ChannelModel::NoCd).with_round_metrics();
        let report = Simulator::new(&g, config).run(|v, _| Probe {
            transmit: v != 0,
            saw: None,
        });
        let timeline = report.metrics.unwrap();
        assert_eq!(timeline.len(), 1);
        let m = timeline[0];
        assert_eq!(m.round, 0);
        assert_eq!(m.transmitting, 2);
        assert_eq!(m.listening, 1);
        assert_eq!(m.sleeping, 0);
        assert_eq!(m.finished, 0);
        assert_eq!(m.collisions, 1);
        assert_eq!(m.receptions, 0);
        assert_eq!(m.cumulative_energy, 3);
    }

    #[test]
    fn metrics_count_lost_receptions() {
        // Path: node 0 transmits, node 1 listens, loss = 1.0 — the lone
        // arrival fades, so the listen is a lost reception (and *not* a
        // successful one: receptions now count post-fade decodes).
        let g = generators::path(2);
        let config = SimConfig::new(ChannelModel::Cd)
            .with_loss_probability(1.0)
            .with_round_metrics();
        let report = Simulator::new(&g, config).run(|v, _| Probe {
            transmit: v == 0,
            saw: None,
        });
        let m = report.metrics.unwrap()[0];
        assert_eq!(m.receptions, 0);
        assert_eq!(m.lost_receptions, 1);
        assert_eq!(m.faded_edges, 1);
        assert_eq!(m.collisions, 0);
    }

    #[test]
    fn metrics_count_jamming_and_crashes() {
        // Star: leaf 1 transmits to the hub, leaf 2 jams; leaf 1's node 3
        // (extra leaf) crashes at round 1.
        let g = generators::star(4);
        let plan = FaultPlan::none().with_jammer(2).with_crash(3, 1);
        let config = SimConfig::new(ChannelModel::Cd)
            .with_faults(plan)
            .with_round_metrics();
        let report = Simulator::new(&g, config).run(|v, _| -> Box<dyn Protocol + Send> {
            match v {
                0 => Box::new(Rx4::default()),
                _ => Box::new(Chatter { budget: 4, seen: 0 }),
            }
        });
        assert!(report.completed);
        let timeline = report.metrics.unwrap();
        let first = timeline[0];
        assert_eq!(first.jamming, 1);
        assert_eq!(first.crashed, 0);
        assert_eq!(first.jammed_receptions, 1);
        assert_eq!(first.collisions, 1);
        assert_eq!(first.node_count(), 4);
        // From round 2 on, node 3's crash (at its round-1 poll) is visible.
        let later = timeline.iter().find(|m| m.round == 2).unwrap();
        assert_eq!(later.crashed, 1);
        assert_eq!(later.node_count(), 4);
        assert_eq!(report.faulty, vec![false, false, true, true]);
    }

    #[test]
    fn metrics_absent_unless_requested() {
        let g = generators::path(3);
        let report = Simulator::new(&g, SimConfig::new(ChannelModel::Cd)).run(|v, _| Probe {
            transmit: v == 0,
            saw: None,
        });
        assert!(report.metrics.is_none());
    }

    #[test]
    fn masked_kinds_are_never_delivered() {
        use crate::trace::{EventKind, EventMask, FilteredTrace, VecTrace};
        let g = generators::star(4);
        let sink = FilteredTrace::new(VecTrace::new())
            .with_mask(EventMask::only([EventKind::Fed, EventKind::RoundMetrics]));
        let mut sink = sink;
        let _ = Simulator::new(&g, SimConfig::new(ChannelModel::Cd)).run_traced(
            |v, _| Probe {
                transmit: v == 0,
                saw: None,
            },
            &mut sink,
        );
        let inner = sink.into_inner();
        assert!(!inner.events.is_empty());
        for e in &inner.events {
            assert!(
                matches!(e.kind(), EventKind::Fed | EventKind::RoundMetrics),
                "masked kind delivered: {e:?}"
            );
        }
    }

    #[test]
    fn metrics_partial_timeline_on_round_cap() {
        struct Forever;
        impl Protocol for Forever {
            fn act(&mut self, _round: u64, _rng: &mut NodeRng) -> Action {
                Action::Listen
            }
            fn feedback(&mut self, _round: u64, _fb: Feedback, _rng: &mut NodeRng) {}
            fn status(&self) -> NodeStatus {
                NodeStatus::Undecided
            }
            fn finished(&self) -> bool {
                false
            }
        }
        let g = generators::empty(2);
        let config = SimConfig::new(ChannelModel::Cd)
            .with_max_rounds(10)
            .with_round_metrics();
        let report = Simulator::new(&g, config).run(|_, _| Forever);
        assert!(!report.completed);
        let timeline = report.metrics.unwrap();
        assert_eq!(timeline.len(), 10);
        assert_eq!(timeline.last().unwrap().cumulative_energy, 20);
    }

    /// Collects `(round, node)` for every trace event of the given fault
    /// kind.
    fn fault_events(trace: &crate::trace::VecTrace, kind: FaultKind) -> Vec<(u64, NodeId)> {
        trace
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Fault { round, node, fault } if *fault == kind => Some((*round, *node)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn recovery_window_downs_then_revives_a_node() {
        // Three isolated chatterboxes; node 1 is down for rounds [3, 6).
        // It acts in rounds 0..3, is rebuilt at 6, and chats again from 7
        // with a fresh budget — so it finishes 7 rounds after the others.
        let g = generators::empty(3);
        let config = SimConfig::new(ChannelModel::Cd)
            .with_faults(FaultPlan::none().with_recovery(1, 3, 6))
            .with_round_metrics();
        let mut trace = crate::trace::VecTrace::new();
        let report = Simulator::new(&g, config).run_traced(
            |_, _| Chatter {
                budget: 20,
                seen: 0,
            },
            &mut trace,
        );
        assert!(report.completed);
        assert_eq!(report.rounds, 27);
        // Recovered nodes are not faulty at the end of the run.
        assert_eq!(report.faulty, vec![false, false, false]);
        assert_eq!(report.meters[0].energy(), 20);
        assert_eq!(report.meters[1].energy(), 23); // 3 before + 20 after
        assert_eq!(report.meters[0].finished_at, Some(19));
        assert_eq!(report.meters[1].finished_at, Some(26));
        // Going down wipes the lifecycle stamps; the fresh instance
        // re-registers its (always-OutMis) status at the restart round.
        assert_eq!(report.meters[0].decided_at, None);
        assert_eq!(report.meters[1].decided_at, Some(6));
        assert_eq!(fault_events(&trace, FaultKind::Crash), vec![(3, 1)]);
        assert_eq!(fault_events(&trace, FaultKind::Recover), vec![(6, 1)]);
        // The metrics timeline moves node 1 through the crashed column and
        // back; the population identity holds on every record.
        let timeline = report.metrics.unwrap();
        assert_eq!(timeline.len(), 27); // every round was processed
        for (i, m) in timeline.iter().enumerate() {
            assert_eq!(m.round, i as u64);
            assert_eq!(m.node_count(), 3, "round {i}");
        }
        assert_eq!(timeline[2].crashed, 0);
        assert_eq!(timeline[3].crashed, 0); // snapshot is taken pre-round
        assert_eq!(timeline[4].crashed, 1);
        assert_eq!(timeline[6].crashed, 1);
        assert_eq!(timeline[7].crashed, 0);
        assert_eq!(timeline[5].recovered, 0);
        assert_eq!(timeline[6].recovered, 1);
        assert_eq!(timeline.last().unwrap().recovered, 1);
        assert_eq!(timeline.last().unwrap().joined, 0);
    }

    #[test]
    fn finished_node_is_parked_and_revived_by_a_later_window() {
        // A lone chatterbox finishes at round 1, long before its down
        // window [5, 7). Finishing must not retire it for good: the window
        // wipes it back to life and it redoes its work.
        let g = generators::empty(1);
        let config =
            SimConfig::new(ChannelModel::Cd).with_faults(FaultPlan::none().with_recovery(0, 5, 7));
        let report = Simulator::new(&g, config).run(|_, _| Chatter { budget: 2, seen: 0 });
        assert!(report.completed);
        assert_eq!(report.rounds, 10);
        assert_eq!(report.faulty, vec![false]);
        assert_eq!(report.meters[0].energy(), 4); // 2 before + 2 after
        assert_eq!(report.meters[0].finished_at, Some(9));
    }

    #[test]
    fn recover_by_turns_a_crash_into_a_down_window() {
        // The same scheduled crash as `crash_stop_retires_node_and_marks_
        // it_faulty`, but with a recovery deadline: the node comes back at
        // a seeded round in (2, 12] and completes its work.
        let g = generators::empty(3);
        let config = SimConfig::new(ChannelModel::Cd)
            .with_faults(FaultPlan::none().with_crash(1, 2).with_recover_by(12));
        let mut trace = crate::trace::VecTrace::new();
        let report = Simulator::new(&g, config)
            .run_traced(|_, _| Chatter { budget: 5, seen: 0 }, &mut trace);
        assert!(report.completed);
        assert_eq!(report.faulty, vec![false, false, false]);
        let recoveries = fault_events(&trace, FaultKind::Recover);
        assert_eq!(recoveries.len(), 1);
        let (up, node) = recoveries[0];
        assert_eq!(node, 1);
        assert!((3..=12).contains(&up), "recovery at {up} outside (2, 12]");
        assert_eq!(report.meters[1].energy(), 7); // 2 before + 5 after
        assert_eq!(report.meters[1].finished_at, Some(up + 5));
    }

    #[test]
    fn joins_hold_a_node_out_until_its_round() {
        // Path 0-1: node 0 listens; node 1 joins at round 3 and transmits.
        // Until the join, node 0 hears silence and node 1 counts in the
        // sleeping population.
        let g = generators::path(2);
        let config = SimConfig::new(ChannelModel::Cd)
            .with_faults(FaultPlan::none().with_join(1, 3))
            .with_round_metrics();
        let mut trace = crate::trace::VecTrace::new();
        let report = Simulator::new(&g, config).run_traced(
            |v, _| -> Box<dyn Protocol + Send> {
                if v == 0 {
                    Box::new(Rx4::default())
                } else {
                    Box::new(Chatter { budget: 2, seen: 0 })
                }
            },
            &mut trace,
        );
        assert!(report.completed);
        assert_eq!(report.rounds, 5);
        assert_eq!(fault_events(&trace, FaultKind::Join), vec![(3, 1)]);
        let fed: Vec<Feedback> = trace
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Fed {
                    node: 0, feedback, ..
                } => Some(*feedback),
                _ => None,
            })
            .collect();
        assert_eq!(
            fed,
            vec![
                Feedback::Silence,
                Feedback::Silence,
                Feedback::Silence,
                Feedback::Heard(Message::unary()),
            ]
        );
        let timeline = report.metrics.unwrap();
        for m in &timeline {
            assert_eq!(m.node_count(), 2, "round {}", m.round);
        }
        assert_eq!(timeline[0].sleeping, 1); // the pre-join node
        assert_eq!(timeline[0].joined, 0);
        assert_eq!(timeline[3].transmitting, 1);
        assert_eq!(timeline[3].joined, 1);
        assert_eq!(timeline[4].joined, 1);
    }

    #[test]
    fn churned_runs_are_deterministic_per_seed() {
        let run = || {
            let config = SimConfig::new(ChannelModel::Cd)
                .with_seed(11)
                .with_faults(FaultPlan::none().with_churn(
                    0.15,
                    20,
                    crate::fault::DownTime::Fixed(3),
                ))
                .with_round_metrics();
            Simulator::new(&generators::empty(4), config).run(|_, _| Chatter {
                budget: 30,
                seen: 0,
            })
        };
        let (a, b) = (run(), run());
        assert!(a.completed);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    /// Listens forever, claiming MIS membership. On an empty graph this is
    /// a correct (all-InMis) MIS that never finishes on its own — the
    /// canonical client of [`ConvergencePolicy`] early stopping.
    struct Beacon;
    impl Protocol for Beacon {
        fn act(&mut self, _round: u64, _rng: &mut NodeRng) -> Action {
            Action::Listen
        }
        fn feedback(&mut self, _round: u64, _fb: Feedback, _rng: &mut NodeRng) {}
        fn status(&self) -> NodeStatus {
            NodeStatus::InMis
        }
        fn finished(&self) -> bool {
            false
        }
    }

    #[test]
    fn convergence_policy_stops_a_recovered_run_and_stamps_converged_at() {
        // Node 0 is down for rounds [2, 4); both nodes are correct InMis
        // singletons whenever alive. The live-subgraph check never fails,
        // so convergence anchors at the last scheduled fault (round 4) and
        // the run stops after the 3-round stability window.
        let g = generators::empty(2);
        let config = SimConfig::new(ChannelModel::Cd)
            .with_faults(FaultPlan::none().with_recovery(0, 2, 4))
            .with_convergence(ConvergencePolicy::new(3));
        let report = Simulator::new(&g, config).run(|_, _| Beacon);
        assert!(report.completed);
        assert!(!report.watchdog_fired);
        assert_eq!(report.converged_at, Some(4));
        assert_eq!(report.rounds, 8); // stability proven at round 4 + 3
        assert_eq!(report.meters[1].energy(), 8);
        assert_eq!(report.meters[0].energy(), 5); // rounds 0, 1, 5, 6, 7
                                                  // The revoked decision stamp was reopened and honestly re-stamped.
        assert_eq!(report.meters[0].decided_at, Some(4));
        assert_eq!(report.meters[1].decided_at, None);
    }

    #[test]
    fn convergence_policy_ends_fault_free_runs_of_nonterminating_protocols() {
        // No faults at all: the last-fault anchor is round 0, the MIS is
        // correct from the start, and the policy is the only thing standing
        // between a monitoring protocol and `max_rounds`.
        let g = generators::empty(3);
        let config = SimConfig::new(ChannelModel::Cd).with_convergence(ConvergencePolicy::new(5));
        let report = Simulator::new(&g, config).run(|_, _| Beacon);
        assert!(report.completed);
        assert_eq!(report.converged_at, Some(0));
        assert_eq!(report.rounds, 6);
    }

    #[test]
    fn quiescence_watchdog_aborts_runs_that_never_reconverge() {
        // An eternally-undecided protocol can never pass the live-subgraph
        // check; the watchdog calls the run off 10 rounds after the last
        // scheduled fault (round 4).
        struct Limbo;
        impl Protocol for Limbo {
            fn act(&mut self, _round: u64, _rng: &mut NodeRng) -> Action {
                Action::Listen
            }
            fn feedback(&mut self, _round: u64, _fb: Feedback, _rng: &mut NodeRng) {}
            fn status(&self) -> NodeStatus {
                NodeStatus::Undecided
            }
            fn finished(&self) -> bool {
                false
            }
        }
        let g = generators::empty(2);
        let config = SimConfig::new(ChannelModel::Cd)
            .with_faults(FaultPlan::none().with_recovery(0, 2, 4))
            .with_convergence(ConvergencePolicy::new(2).with_quiescence(10));
        let report = Simulator::new(&g, config).run(|_, _| Limbo);
        assert!(!report.completed);
        assert!(report.watchdog_fired);
        assert_eq!(report.converged_at, None);
        assert_eq!(report.rounds, 15); // aborted at round 4 + 10
    }

    #[test]
    #[should_panic(expected = "quiescence budget")]
    fn quiescence_shorter_than_stability_is_rejected() {
        let _ = ConvergencePolicy::new(5).with_quiescence(3);
    }

    #[test]
    fn fault_free_reports_omit_convergence_fields() {
        let g = generators::path(3);
        let report = Simulator::new(&g, SimConfig::new(ChannelModel::Cd)).run(|v, _| Probe {
            transmit: v == 0,
            saw: None,
        });
        assert_eq!(report.converged_at, None);
        assert!(!report.watchdog_fired);
        let json = serde_json::to_string(&report).unwrap();
        assert!(!json.contains("converged_at"));
        assert!(!json.contains("watchdog_fired"));
    }

    #[test]
    fn sparse_is_the_default_engine_mode() {
        assert_eq!(SimConfig::new(ChannelModel::Cd).mode, EngineMode::Sparse);
        assert_eq!(
            SimConfig::new(ChannelModel::Cd)
                .with_engine_mode(EngineMode::Dense)
                .mode,
            EngineMode::Dense
        );
    }

    /// Runs `config` under both backends and asserts byte-identical
    /// reports before handing them back.
    fn run_both_modes<P: Protocol + Send>(
        g: &Graph,
        config: &SimConfig,
        factory: impl Fn(NodeId, &mut NodeRng) -> P + Copy + Send,
    ) -> RunReport {
        let dense = Simulator::new(g, config.clone().with_engine_mode(EngineMode::Dense))
            .run(|v, rng| factory(v, rng));
        let sparse = Simulator::new(g, config.clone().with_engine_mode(EngineMode::Sparse))
            .run(|v, rng| factory(v, rng));
        assert_eq!(dense, sparse, "engine modes diverged");
        assert_eq!(
            serde_json::to_string(&dense).unwrap(),
            serde_json::to_string(&sparse).unwrap()
        );
        sparse
    }

    #[test]
    fn engine_modes_agree_on_a_fault_heavy_run() {
        let g = generators::gnp(24, 0.2, 3);
        let plan = FaultPlan::none()
            .with_loss(0.4)
            .with_random_crashes(3, 2)
            .with_random_jammers(2)
            .with_wake_window(6)
            .with_dormancy(0.3, 8, 4);
        let config = SimConfig::new(ChannelModel::Cd)
            .with_seed(21)
            .with_faults(plan)
            .with_round_metrics();
        let report = run_both_modes(&g, &config, |_, _| Chatter { budget: 8, seen: 0 });
        assert!(report.completed);
    }

    #[test]
    fn wake_offsets_landing_inside_a_skipped_span_still_fire() {
        // Node 0 acts at round 0 then sleeps to 100; node 1's wake offset
        // 30 lands strictly inside that quiet span. The fast-forward must
        // stop at 30 for node 1 — in both engine modes, identically.
        let g = generators::empty(2);
        let base = SimConfig::new(ChannelModel::Cd).with_seed(5);
        let mut reports = Vec::new();
        for mode in [EngineMode::Dense, EngineMode::Sparse] {
            let report = Simulator::new(&g, base.clone().with_engine_mode(mode))
                .with_wake_offsets(vec![0, 30])
                .run(|v, _| -> Box<dyn Protocol + Send> {
                    if v == 0 {
                        Box::new(Sleeper {
                            wake: 100,
                            done: false,
                        })
                    } else {
                        Box::new(Probe {
                            transmit: true,
                            saw: None,
                        })
                    }
                });
            assert!(report.completed, "{mode:?}");
            assert_eq!(report.meters[1].finished_at, Some(30), "{mode:?}");
            assert_eq!(report.meters[0].finished_at, Some(100), "{mode:?}");
            assert_eq!(report.rounds, 101, "{mode:?}");
            reports.push(report);
        }
        assert_eq!(reports[0], reports[1]);
    }

    /// Listens at rounds 0 and 20, sleeping through [2, 20); finishes
    /// once it hears a collision.
    struct Napper {
        heard_jam: bool,
    }
    impl Protocol for Napper {
        fn act(&mut self, round: u64, _rng: &mut NodeRng) -> Action {
            if round == 1 {
                Action::Sleep { wake_at: 20 }
            } else {
                Action::Listen
            }
        }
        fn feedback(&mut self, _round: u64, fb: Feedback, _rng: &mut NodeRng) {
            if fb == Feedback::Collision {
                self.heard_jam = true;
            }
        }
        fn status(&self) -> NodeStatus {
            NodeStatus::OutMis
        }
        fn finished(&self) -> bool {
            self.heard_jam
        }
    }

    #[test]
    fn jammer_window_opening_mid_span_jams_the_next_processed_round() {
        // Path 0-1: node 0 sleeps through rounds [2, 20); jammer 1's
        // window opens at its wake offset 10, in the middle of that quiet
        // span. No round in the span is processed — the jam is simply in
        // force when node 0 next listens, and the metrics row for round 20
        // shows the jammer on air.
        let g = generators::path(2);
        let plan = FaultPlan::none()
            .with_jammer(1)
            .with_wake(crate::fault::WakePlan::Explicit(vec![0, 10]));
        let base = SimConfig::new(ChannelModel::Cd)
            .with_faults(plan)
            .with_round_metrics();
        let mut reports = Vec::new();
        for mode in [EngineMode::Dense, EngineMode::Sparse] {
            let config = base.clone().with_engine_mode(mode);
            let report = Simulator::new(&g, config).run(|_, _| Napper { heard_jam: false });
            assert!(report.completed, "{mode:?}");
            assert_eq!(report.rounds, 21, "{mode:?}");
            let timeline = report.metrics.as_deref().unwrap();
            let processed: Vec<u64> = timeline.iter().map(|m| m.round).collect();
            assert_eq!(processed, vec![0, 1, 20], "{mode:?}");
            assert_eq!(timeline[0].jamming, 0, "{mode:?}");
            assert_eq!(timeline[2].jamming, 1, "{mode:?}");
            assert_eq!(timeline[2].collisions, 1, "{mode:?}");
            reports.push(report);
        }
        assert_eq!(reports[0], reports[1]);
    }

    /// Listens once at round 0, then sleeps to round 10 000; claims MIS
    /// membership throughout (a sleeping [`Beacon`]).
    struct DozingBeacon;
    impl Protocol for DozingBeacon {
        fn act(&mut self, round: u64, _rng: &mut NodeRng) -> Action {
            if round == 0 {
                Action::Listen
            } else {
                Action::Sleep { wake_at: 10_000 }
            }
        }
        fn feedback(&mut self, _round: u64, _fb: Feedback, _rng: &mut NodeRng) {}
        fn status(&self) -> NodeStatus {
            NodeStatus::InMis
        }
        fn finished(&self) -> bool {
            false
        }
    }

    #[test]
    fn stability_stop_fires_inside_a_skipped_span() {
        // Both nodes doze until round 10 000; node 0's recovery window
        // ends at round 4, so the 5-round stability window expires at
        // round 9 — strictly inside the quiet span. The run must end
        // `completed` at exactly round 10, as a round-by-round execution
        // would, not at the next wake.
        let g = generators::empty(2);
        let base = SimConfig::new(ChannelModel::Cd)
            .with_faults(FaultPlan::none().with_recovery(0, 2, 4))
            .with_convergence(ConvergencePolicy::new(5));
        let mut reports = Vec::new();
        for mode in [EngineMode::Dense, EngineMode::Sparse] {
            let report =
                Simulator::new(&g, base.clone().with_engine_mode(mode)).run(|_, _| DozingBeacon);
            assert!(report.completed, "{mode:?}");
            assert!(!report.watchdog_fired, "{mode:?}");
            assert_eq!(report.converged_at, Some(4), "{mode:?}");
            assert_eq!(report.rounds, 10, "{mode:?}");
            reports.push(report);
        }
        assert_eq!(reports[0], reports[1]);
    }

    #[test]
    fn quiescence_watchdog_fires_inside_a_skipped_span() {
        // An eternally-undecided protocol that sleeps far past the
        // watchdog deadline (last fault 4 + budget 10 = round 14): the
        // abort must land at round 14 inside the quiet span, giving the
        // same 15-round report as the always-awake `Limbo` variant.
        struct DozingLimbo;
        impl Protocol for DozingLimbo {
            fn act(&mut self, round: u64, _rng: &mut NodeRng) -> Action {
                if round == 0 {
                    Action::Listen
                } else {
                    Action::Sleep { wake_at: 10_000 }
                }
            }
            fn feedback(&mut self, _round: u64, _fb: Feedback, _rng: &mut NodeRng) {}
            fn status(&self) -> NodeStatus {
                NodeStatus::Undecided
            }
            fn finished(&self) -> bool {
                false
            }
        }
        let g = generators::empty(2);
        let base = SimConfig::new(ChannelModel::Cd)
            .with_faults(FaultPlan::none().with_recovery(0, 2, 4))
            .with_convergence(ConvergencePolicy::new(2).with_quiescence(10));
        let mut reports = Vec::new();
        for mode in [EngineMode::Dense, EngineMode::Sparse] {
            let report =
                Simulator::new(&g, base.clone().with_engine_mode(mode)).run(|_, _| DozingLimbo);
            assert!(!report.completed, "{mode:?}");
            assert!(report.watchdog_fired, "{mode:?}");
            assert_eq!(report.converged_at, None, "{mode:?}");
            assert_eq!(report.rounds, 15, "{mode:?}");
            reports.push(report);
        }
        assert_eq!(reports[0], reports[1]);
    }

    #[test]
    fn max_rounds_truncates_a_skip_in_both_modes() {
        // A sleeper bound for round 10⁶ under `max_rounds = 50`: the jump
        // clamps at the cap and reports an incomplete 50-round run with a
        // single processed round on the metrics timeline.
        let g = generators::empty(1);
        for mode in [EngineMode::Dense, EngineMode::Sparse] {
            let config = SimConfig::new(ChannelModel::Cd)
                .with_max_rounds(50)
                .with_engine_mode(mode)
                .with_round_metrics();
            let report = Simulator::new(&g, config).run(|_, _| Sleeper {
                wake: 1_000_000,
                done: false,
            });
            assert!(!report.completed, "{mode:?}");
            assert_eq!(report.rounds, 50, "{mode:?}");
            assert_eq!(report.meters[0].energy(), 0, "{mode:?}");
            assert_eq!(report.metrics.unwrap().len(), 1, "{mode:?}");
        }
    }

    /// Plays a fixed per-round action script; finishes when it runs out.
    struct Script {
        plan: Vec<Action>,
        fed: usize,
    }

    impl Protocol for Script {
        fn act(&mut self, round: u64, _rng: &mut NodeRng) -> Action {
            self.plan[round as usize]
        }
        fn feedback(&mut self, _round: u64, _fb: Feedback, _rng: &mut NodeRng) {
            self.fed += 1;
        }
        fn status(&self) -> NodeStatus {
            NodeStatus::OutMis
        }
        fn finished(&self) -> bool {
            self.fed == self.plan.len()
        }
    }

    /// Runs per-node scripts and returns each node's feedback, in round
    /// order, harvested from the trace stream.
    fn script_run(
        g: &Graph,
        config: SimConfig,
        plan: impl Fn(NodeId) -> Vec<Action>,
    ) -> (RunReport, Vec<Vec<Feedback>>) {
        let mut trace = crate::trace::VecTrace::new();
        let report = Simulator::new(g, config).run_traced(
            |v, _| Script {
                plan: plan(v),
                fed: 0,
            },
            &mut trace,
        );
        let mut observed: Vec<Vec<Feedback>> = vec![Vec::new(); g.len()];
        for e in &trace.events {
            if let TraceEvent::Fed { node, feedback, .. } = e {
                observed[*node].push(*feedback);
            }
        }
        (report, observed)
    }

    #[test]
    fn channels_partition_the_spectrum() {
        // Star: both leaves transmit simultaneously, but on different
        // channels — the hub hears whichever channel it tunes to, with no
        // collision. The same scripts at F = 1 (every `on_channel` call
        // collapsed to 0) collide as before.
        let g = generators::star(3);
        let plan = |v: NodeId| match v {
            0 => vec![Action::Listen.on_channel(1)],
            1 => vec![Action::Transmit(Message::unary()).on_channel(1)],
            _ => vec![Action::Transmit(Message::unary())],
        };
        let config = SimConfig::new(ChannelModel::Cd).with_channels(2);
        let (report, obs) = script_run(&g, config, plan);
        assert!(report.completed);
        assert_eq!(obs[0], vec![Feedback::Heard(Message::unary())]);
        assert_eq!(obs[1], vec![Feedback::Sent]);

        let flat = |v: NodeId| match v {
            0 => vec![Action::Listen],
            _ => vec![Action::Transmit(Message::unary())],
        };
        let (_, obs) = script_run(&g, SimConfig::new(ChannelModel::Cd), flat);
        assert_eq!(obs[0], vec![Feedback::Collision]);
    }

    #[test]
    fn channel_zero_scripts_match_single_channel_runs_exactly() {
        // A lossy run whose nodes never leave channel 0 must be
        // byte-identical at F = 2 and F = 1: channel 0 keeps the legacy
        // fade stream, and no multichannel branch may perturb anything.
        let g = generators::clique(5);
        let base = SimConfig::new(ChannelModel::NoCd)
            .with_seed(11)
            .with_loss_probability(0.4)
            .with_round_metrics();
        let plan = |v: NodeId| {
            if v % 2 == 0 {
                vec![Action::Transmit(Message::unary()).on_channel(0); 3]
            } else {
                vec![Action::Listen.on_channel(0); 3]
            }
        };
        let (single, obs_single) = script_run(&g, base.clone(), plan);
        let (dual, obs_dual) = script_run(&g, base.with_channels(2), plan);
        assert_eq!(obs_single, obs_dual);
        assert_eq!(single.meters, dual.meters);
        assert_eq!(single.metrics, dual.metrics);
        // The only allowed difference: F > 1 with metrics grows the
        // per-channel timeline (absent at F = 1 by the compat contract).
        assert!(single.channel_metrics.is_none());
        assert_eq!(dual.channel_metrics.as_ref().unwrap().len(), 3 * 2);
    }

    #[test]
    fn fixed_channel_jam_feedback_matches_the_channel_model() {
        // Channel 1 is flooded: a listener tuned to it hears the model's
        // worst case (collision / silence / beep), while the hub's
        // channel-0 broadcast reaches the leaf tuned to channel 0.
        let g = generators::star(3);
        let plan = |v: NodeId| match v {
            0 => vec![Action::Transmit(Message::unary()).on_channel(0)],
            1 => vec![Action::Listen.on_channel(1)],
            _ => vec![Action::Listen.on_channel(0)],
        };
        for (model, expect) in [
            (ChannelModel::Cd, Feedback::Collision),
            (ChannelModel::NoCd, Feedback::Silence),
            (ChannelModel::Beeping, Feedback::Beep),
        ] {
            let config = SimConfig::new(model)
                .with_channels(2)
                .with_faults(FaultPlan::none().with_fixed_channel_jam(vec![1]));
            let (_, obs) = script_run(&g, config, plan);
            assert_eq!(obs[1], vec![expect], "{model:?}");
            let clear = match model {
                ChannelModel::Cd | ChannelModel::NoCd => Feedback::Heard(Message::unary()),
                _ => Feedback::Beep,
            };
            assert_eq!(obs[2], vec![clear], "{model:?}");
        }
    }

    #[test]
    fn sender_cd_hears_the_jammed_channel() {
        // BeepingSenderCd: a lone beeper on a jammed channel hears the
        // adversary's noise floor as a beep.
        let g = generators::empty(1);
        let config = SimConfig::new(ChannelModel::BeepingSenderCd)
            .with_channels(2)
            .with_faults(FaultPlan::none().with_fixed_channel_jam(vec![1]));
        let (_, obs) = script_run(&g, config, |_| {
            vec![Action::Transmit(Message::unary()).on_channel(1)]
        });
        assert_eq!(obs[0], vec![Feedback::Beep]);
    }

    #[test]
    fn jam_set_is_capped_below_the_channel_count() {
        // The adversary asks for both channels of an F = 2 config; the
        // Daum–Kuhn cap (t < F) grants only the first, so channel 1 still
        // delivers.
        let g = generators::path(2);
        let config = SimConfig::new(ChannelModel::Cd)
            .with_channels(2)
            .with_round_metrics()
            .with_faults(FaultPlan::none().with_fixed_channel_jam(vec![0, 1]));
        let plan = |v: NodeId| match v {
            0 => vec![Action::Transmit(Message::unary()).on_channel(1)],
            _ => vec![Action::Listen.on_channel(1)],
        };
        let (report, obs) = script_run(&g, config, plan);
        assert_eq!(obs[1], vec![Feedback::Heard(Message::unary())]);
        assert_eq!(report.metrics.unwrap()[0].jammed_channels, 1);
    }

    #[test]
    fn adaptive_jammer_follows_the_busiest_channel() {
        // Round 0: no history, ties fall to channel 0 — the channel-1
        // transmission goes through. Round 1: channel 1 was the busiest,
        // so the adversary moves there and the same transmission collides.
        let g = generators::path(2);
        let config = SimConfig::new(ChannelModel::Cd)
            .with_channels(2)
            .with_faults(FaultPlan::none().with_adaptive_channel_jam(1));
        let plan = |v: NodeId| match v {
            0 => vec![Action::Transmit(Message::unary()).on_channel(1); 2],
            _ => vec![Action::Listen.on_channel(1); 2],
        };
        let (_, obs) = script_run(&g, config, plan);
        assert_eq!(
            obs[1],
            vec![Feedback::Heard(Message::unary()), Feedback::Collision]
        );
    }

    #[test]
    fn roaming_jammer_is_seed_deterministic() {
        let g = generators::clique(4);
        let config = SimConfig::new(ChannelModel::NoCd)
            .with_seed(23)
            .with_channels(4)
            .with_round_metrics()
            .with_faults(FaultPlan::none().with_roaming_channel_jam(2));
        let plan = |v: NodeId| {
            let c = (v % 4) as u16;
            vec![Action::Transmit(Message::unary()).on_channel(c); 4]
        };
        let (a, _) = script_run(&g, config.clone(), plan);
        let (b, _) = script_run(&g, config, plan);
        assert_eq!(a, b);
        for m in a.metrics.unwrap() {
            assert_eq!(m.jammed_channels, 2);
        }
    }

    #[test]
    fn channel_metrics_attribute_activity_per_channel() {
        // One round on a star: both leaves collide on channel 0 while the
        // jammed channel 1 sits empty.
        let g = generators::star(3);
        let config = SimConfig::new(ChannelModel::Cd)
            .with_channels(2)
            .with_round_metrics()
            .with_faults(FaultPlan::none().with_fixed_channel_jam(vec![1]));
        let plan = |v: NodeId| match v {
            0 => vec![Action::Listen],
            _ => vec![Action::Transmit(Message::unary())],
        };
        let (report, obs) = script_run(&g, config, plan);
        assert_eq!(obs[0], vec![Feedback::Collision]);
        let rows = report.channel_metrics.unwrap();
        assert_eq!(
            rows,
            vec![
                ChannelRoundMetrics {
                    round: 0,
                    channel: 0,
                    jammed: false,
                    transmitting: 2,
                    listening: 1,
                    collisions: 1,
                    receptions: 0,
                },
                ChannelRoundMetrics {
                    round: 0,
                    channel: 1,
                    jammed: true,
                    transmitting: 0,
                    listening: 0,
                    collisions: 0,
                    receptions: 0,
                },
            ]
        );
        assert_eq!(report.metrics.unwrap()[0].jammed_channels, 1);
    }

    #[test]
    fn multichannel_run_is_thread_count_invariant() {
        let g = generators::clique(6);
        let base = SimConfig::new(ChannelModel::Cd)
            .with_seed(5)
            .with_channels(3)
            .with_loss_probability(0.3)
            .with_round_metrics()
            .with_faults(FaultPlan::none().with_roaming_channel_jam(1));
        let plan = |v: NodeId| {
            let c = (v % 3) as u16;
            if v % 2 == 0 {
                vec![Action::Transmit(Message::unary()).on_channel(c); 3]
            } else {
                vec![Action::Listen.on_channel(c); 3]
            }
        };
        let (serial, obs_serial) = script_run(&g, base.clone().with_threads(1), plan);
        let (par, obs_par) = script_run(&g, base.with_threads(4), plan);
        assert_eq!(serial, par);
        assert_eq!(obs_serial, obs_par);
    }

    #[test]
    #[should_panic(expected = "transmitted on channel")]
    fn out_of_range_channel_panics() {
        let g = generators::empty(1);
        let config = SimConfig::new(ChannelModel::Cd).with_channels(2);
        script_run(&g, config, |_| {
            vec![Action::Transmit(Message::unary()).on_channel(2)]
        });
    }

    #[test]
    #[should_panic(expected = "transmitted on channel")]
    fn single_channel_config_rejects_channel_selection() {
        let g = generators::empty(1);
        script_run(&g, SimConfig::new(ChannelModel::Cd), |_| {
            vec![Action::Transmit(Message::unary()).on_channel(1)]
        });
    }
}
