//! Crash-recovery through the facade: revived and joined nodes are healed
//! by the self-healing wrapper, runs re-converge, and the report says when.
//!
//! These tests exercise the full recovery stack end to end — the engine's
//! down-window/rebuild/`on_restart` machinery, [`RepairingMis`]'s
//! cover/duel/repair epochs, and the convergence stamping — the way a
//! library consumer would, via `energy_mis::` re-exports only.

use energy_mis::graphs::generators;
use energy_mis::mis::cd::CdMis;
use energy_mis::mis::params::CdParams;
use energy_mis::mis::{RepairConfig, RepairingMis};
use energy_mis::netsim::{
    ChannelModel, ConvergencePolicy, FaultPlan, NodeRng, SimConfig, Simulator,
};
use proptest::prelude::*;

/// Two explicit down windows plus a mid-run join, healed by the wrapper:
/// the run re-converges after the last revival, nobody is left marked
/// faulty, and the cumulative recovery counters land exactly.
#[test]
fn explicit_windows_and_a_join_reconverge_with_exact_counters() {
    let g = generators::path(12);
    let params = CdParams::for_n(32);
    let rc = RepairConfig::for_cd(params.total_rounds());
    let e = rc.epoch_len();
    let plan = FaultPlan::none()
        .with_recovery(2, e + 1, e + 2)
        .with_recovery(7, e + 1, 2 * e)
        .with_join(11, 3);
    let config = SimConfig::new(ChannelModel::Cd)
        .with_seed(9)
        .with_faults(plan)
        .with_convergence(ConvergencePolicy::new(3 * e))
        .with_max_rounds(600 * e)
        .with_round_metrics();
    let report = Simulator::new(&g, config)
        .run(|_, _| RepairingMis::new(rc, move |_rng: &mut NodeRng| CdMis::new(params)));
    assert!(report.completed, "policy never stopped the run");
    assert!(!report.watchdog_fired);
    assert!(report.is_correct_mis(&g), "{:?}", report.verify_mis(&g));
    // Recovered nodes are live again: nobody ends the run faulty.
    assert!(report.faulty.iter().all(|&f| !f));
    // Convergence is anchored after the last fault (the round-2e revival).
    let conv = report.converged_at.expect("converged_at must be stamped");
    assert!(
        conv >= 2 * e,
        "converged at {conv}, before the last revival"
    );
    let timeline = report.metrics.as_deref().unwrap();
    let mut prev = 0;
    for m in timeline {
        assert_eq!(m.node_count(), 12, "round {}", m.round);
        assert!(m.recovered >= prev, "cumulative recovered went backwards");
        prev = m.recovered;
    }
    let last = timeline.last().unwrap();
    assert_eq!(last.recovered, 2, "both down windows must revive");
    assert_eq!(last.joined, 1, "the join must be counted");
}

fn corpus_graph(kind: u8, n: usize, seed: u64) -> energy_mis::graphs::Graph {
    match kind {
        0 => generators::path(n),
        1 => generators::star(n),
        2 => generators::cycle(n),
        3 => generators::clique(n),
        4 => generators::binary_tree(n),
        _ => generators::random_tree(n, seed),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A crash-then-recover of node 0 with no other faults re-converges on
    /// every connected corpus graph — including the star, where node 0 is
    /// the hub and its crash uncovers every leaf at once — and
    /// `converged_at` is stamped at or after the revival.
    #[test]
    fn crash_then_recover_always_stamps_converged_at(
        n in 4usize..12,
        kind in 0u8..6,
        seed in 0u64..1000,
    ) {
        let g = corpus_graph(kind, n, seed);
        let params = CdParams::for_n(32);
        let rc = RepairConfig::for_cd(params.total_rounds());
        let e = rc.epoch_len();
        let config = SimConfig::new(ChannelModel::Cd)
            .with_seed(seed)
            .with_faults(FaultPlan::none().with_recovery(0, e + 1, 2 * e + 1))
            .with_convergence(ConvergencePolicy::new(3 * e))
            .with_max_rounds(600 * e);
        let report = Simulator::new(&g, config)
            .run(|_, _| RepairingMis::new(rc, move |_rng: &mut NodeRng| CdMis::new(params)));
        prop_assert!(report.completed, "no reconvergence on kind {kind}, n {n}");
        prop_assert!(!report.watchdog_fired);
        let conv = report.converged_at;
        prop_assert!(conv.is_some(), "converged_at missing on kind {kind}");
        prop_assert!(conv.unwrap() >= 2 * e + 1, "converged before the revival");
        prop_assert!(report.is_correct_mis(&g), "{:?}", report.verify_mis(&g));
        prop_assert!(report.faulty.iter().all(|&f| !f));
    }
}
