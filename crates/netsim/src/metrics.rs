//! Per-round channel metrics.
//!
//! The paper's claims are statements about *per-round* quantities — how many
//! nodes are awake, how fast the undecided population decays, how much
//! energy has been spent by round `r` — while [`crate::RunReport`] only
//! carries end-of-run totals. [`RoundMetrics`] is the per-round record the
//! engine aggregates cheaply inside its existing round loop; a run collects
//! one record per *processed* round (rounds in which every node slept are
//! skipped by the engine and therefore produce no record — exactly as they
//! cost no energy).
//!
//! Metrics flow through two channels, both opt-in and both zero-cost when
//! unused:
//!
//! - [`SimConfig::with_round_metrics`](crate::SimConfig::with_round_metrics)
//!   stores the full timeline in [`RunReport::metrics`](crate::RunReport);
//! - a [`TraceSink`](crate::TraceSink) whose mask includes
//!   [`EventKind::RoundMetrics`](crate::EventKind) receives one
//!   [`TraceEvent::RoundEnd`](crate::TraceEvent) per processed round,
//!   suitable for streaming (see [`crate::JsonlTrace`]).

use serde::{Deserialize, Serialize};

/// Channel-level counters for one processed simulation round.
///
/// Counting conventions (all verified by the aggregation-invariant tests):
///
/// - `transmitting + listening + sleeping + finished == n` for every record,
///   where `finished` counts nodes retired *strictly before* the round began
///   (a node that finishes during the round is still counted in the awake or
///   sleeping population of that round);
/// - `joined_mis` and `decided` are cumulative *through the end of* the
///   round, so they form monotone completion curves;
/// - the final record's `cumulative_energy` equals the sum of all
///   [`EnergyMeter`](crate::EnergyMeter) totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundMetrics {
    /// The round this record describes.
    pub round: u64,
    /// Nodes that transmitted this round.
    pub transmitting: u32,
    /// Nodes that listened this round.
    pub listening: u32,
    /// Nodes that were asleep this round (including nodes that chose
    /// `Sleep` when polled) and had not yet finished before the round began.
    pub sleeping: u32,
    /// Nodes retired (finished) strictly before this round began.
    pub finished: u32,
    /// Listeners with ≥ 2 transmitting neighbors this round. This counts
    /// the *physical* collision regardless of whether the channel model
    /// makes it observable (CD reports `Collision`, no-CD reports
    /// `Silence`, beeping reports `Beep`).
    pub collisions: u32,
    /// Listeners with exactly one transmitting neighbor this round —
    /// successful receptions before loss injection.
    pub receptions: u32,
    /// Receptions faded to silence by loss injection
    /// ([`SimConfig::with_loss_probability`](crate::SimConfig::with_loss_probability)).
    pub lost_receptions: u32,
    /// Nodes whose status is `InMis` at the end of this round (cumulative).
    pub joined_mis: u32,
    /// Nodes whose status is decided (in or out of the MIS) at the end of
    /// this round (cumulative).
    pub decided: u32,
    /// Total awake node-rounds spent through the end of this round — the
    /// running sum of `transmitting + listening` over all processed rounds.
    pub cumulative_energy: u64,
}

impl RoundMetrics {
    /// Nodes awake this round (`transmitting + listening`).
    pub fn awake(&self) -> u32 {
        self.transmitting + self.listening
    }

    /// Total node count this record describes
    /// (`transmitting + listening + sleeping + finished`).
    pub fn node_count(&self) -> u32 {
        self.transmitting + self.listening + self.sleeping + self.finished
    }

    /// Nodes still undecided at the end of this round.
    pub fn undecided(&self) -> u32 {
        self.node_count() - self.decided
    }
}

/// Running cumulative state the engine threads across rounds while
/// aggregating [`RoundMetrics`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct MetricsAccumulator {
    /// Cumulative count of nodes currently `InMis`.
    pub joined_mis: u32,
    /// Cumulative count of decided nodes.
    pub decided: u32,
    /// Cumulative awake node-rounds.
    pub cumulative_energy: u64,
}

impl MetricsAccumulator {
    /// Closes one round: folds this round's per-round counters together with
    /// the running cumulative state into a [`RoundMetrics`] record.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn finish_round(
        &mut self,
        round: u64,
        n: usize,
        finished_before: u32,
        transmitting: u32,
        listening: u32,
        collisions: u32,
        receptions: u32,
        lost_receptions: u32,
    ) -> RoundMetrics {
        self.cumulative_energy += u64::from(transmitting) + u64::from(listening);
        RoundMetrics {
            round,
            transmitting,
            listening,
            sleeping: n as u32 - finished_before - transmitting - listening,
            finished: finished_before,
            collisions,
            receptions,
            lost_receptions,
            joined_mis: self.joined_mis,
            decided: self.decided,
            cumulative_energy: self.cumulative_energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let m = RoundMetrics {
            round: 3,
            transmitting: 2,
            listening: 5,
            sleeping: 1,
            finished: 4,
            decided: 9,
            ..RoundMetrics::default()
        };
        assert_eq!(m.awake(), 7);
        assert_eq!(m.node_count(), 12);
        assert_eq!(m.undecided(), 3);
    }

    #[test]
    fn accumulator_folds_rounds() {
        let mut acc = MetricsAccumulator::default();
        acc.decided = 1;
        let a = acc.finish_round(0, 4, 0, 2, 2, 1, 0, 0);
        assert_eq!(a.cumulative_energy, 4);
        assert_eq!(a.sleeping, 0);
        assert_eq!(a.decided, 1);
        let b = acc.finish_round(5, 4, 1, 1, 0, 0, 0, 0);
        assert_eq!(b.cumulative_energy, 5);
        assert_eq!(b.sleeping, 2);
        assert_eq!(b.finished, 1);
        assert_eq!(b.node_count(), 4);
    }

    #[test]
    fn serde_roundtrip() {
        let m = RoundMetrics {
            round: 7,
            transmitting: 1,
            listening: 2,
            sleeping: 3,
            finished: 4,
            collisions: 1,
            receptions: 2,
            lost_receptions: 1,
            joined_mis: 2,
            decided: 4,
            cumulative_energy: 99,
        };
        let json = serde_json::to_string(&m).unwrap();
        let back: RoundMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
