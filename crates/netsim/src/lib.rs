//! Synchronous radio-network simulator with the sleeping/energy model.
//!
//! This crate implements the model of §1.1 of the paper exactly:
//!
//! - time is divided into synchronous rounds; all nodes wake up at round 0;
//! - per round a node is **sleeping** or **awake**, and an awake node either
//!   **transmits** or **listens** (half-duplex — never both);
//! - a listener receives a message iff *exactly one* neighbor transmits;
//!   with two or more transmitting neighbors the outcome depends on the
//!   [`ChannelModel`]: collision detection (CD), no collision detection
//!   (no-CD, indistinguishable from silence), or the beeping model;
//! - **energy complexity** is the maximum number of awake rounds over all
//!   nodes; **round complexity** counts every round until all nodes finish;
//! - messages are size-limited (RADIO-CONGEST): the engine enforces the
//!   configured bit budget.
//!
//! Protocols are explicit per-node state machines implementing [`Protocol`];
//! the [`Simulator`] drives them. Sleeping nodes cost the engine nothing —
//! a node that sleeps until round `r` is simply not polled until `r`, so the
//! simulator's work is proportional to total *awake* rounds plus deliveries,
//! mirroring the energy measure itself. Two scheduling backends implement
//! that contract: the default sparse wake queue and a dense O(n)-per-round
//! reference scan ([`EngineMode`]), byte-equivalent by construction and
//! differentially fuzzed against each other — see the [`engine`] module
//! docs for the quiet-round contract.
//!
//! # Observability
//!
//! Two opt-in channels expose what happens *during* a run:
//!
//! - **Round metrics** ([`metrics`]): [`SimConfig::with_round_metrics`]
//!   makes the engine aggregate one [`RoundMetrics`] record per processed
//!   round (awake/sleeping populations, physical collisions, receptions,
//!   MIS progress, cumulative energy) into [`RunReport::metrics`].
//! - **Trace sinks** ([`trace`]): [`Simulator::run_traced`] streams
//!   [`TraceEvent`]s to any [`TraceSink`]. Sinks advertise an
//!   [`EventMask`] of the event kinds they want; the engine skips the
//!   rest, so [`NullTrace`] (mask `NONE`) costs nothing. Ready-made sinks:
//!   [`VecTrace`] (collect all), [`JsonlTrace`] (stream JSON Lines to a
//!   writer), [`RingTrace`] (bounded last-N buffer), and [`FilteredTrace`]
//!   (restrict by event kind, node set, or round range).
//!
//! # Fault injection
//!
//! The clean model above is the paper's; the [`fault`] module perturbs it.
//! A [`FaultPlan`] on [`SimConfig`] composes per-edge reception loss
//! (applied *before* channel resolution, so every channel model fades the
//! same way), crash-stop faults, adversarial jammers, staggered wake-up
//! windows, and radio-dormancy windows — all resolved deterministically
//! from the run's master seed. Multichannel runs
//! ([`SimConfig::with_channels`]) add *global channel adversaries*
//! ([`ChannelAdversary`]) that jam up to `t < F` of the `F` channels per
//! round (docs/MULTICHANNEL.md). Faulty nodes are reported in
//! [`RunReport::faulty`] and exempted from MIS verification; fault activity
//! is observable per round via the [`RoundMetrics`] fault counters and the
//! [`EventKind::Fault`] trace event. An inert plan (the default) costs the
//! round loop nothing measurable.
//!
//! # Crash recovery and convergence
//!
//! Faults need not be terminal: recovery clauses
//! ([`FaultPlan::with_recovery`], [`FaultPlan::with_recover_by`], seeded
//! churn via [`FaultPlan::with_churn`], mid-run joins via
//! [`FaultPlan::with_join`]) schedule down *windows* after which the
//! engine rebuilds the node, calls [`Protocol::on_restart`] on the fresh
//! instance, and re-admits it to the round loop. Such runs are judged by
//! *convergence* rather than end state: [`RunReport::converged_at`] is the
//! first round at or after the last scheduled fault where the
//! live-subgraph MIS is correct and stays correct, and a
//! [`ConvergencePolicy`] can stop a run early once convergence is stable
//! or abort it via a quiescence watchdog (see [`engine`]). The multi-trial
//! [`runner`] additionally isolates panicking trials and checkpoints
//! completed trials to JSONL so interrupted sweeps resume
//! ([`run_trials_resumable`]).
//!
//! # Quick example
//!
//! ```
//! use mis_graphs::generators;
//! use radio_netsim::{Action, ChannelModel, Feedback, NodeStatus, Protocol, SimConfig, Simulator};
//!
//! /// Toy protocol: everyone transmits once at round 0, then leaves.
//! struct OneShot(bool);
//! impl Protocol for OneShot {
//!     fn act(&mut self, _round: u64, _rng: &mut radio_netsim::NodeRng) -> Action {
//!         Action::Transmit(radio_netsim::Message::unary())
//!     }
//!     fn feedback(&mut self, _round: u64, _fb: Feedback, _rng: &mut radio_netsim::NodeRng) {
//!         self.0 = true;
//!     }
//!     fn status(&self) -> NodeStatus { NodeStatus::OutMis }
//!     fn finished(&self) -> bool { self.0 }
//! }
//!
//! let g = generators::star(5);
//! let config = SimConfig::new(ChannelModel::Cd).with_seed(7);
//! let report = Simulator::new(&g, config).run(|_, _| OneShot(false));
//! assert_eq!(report.rounds, 1);
//! assert_eq!(report.max_energy(), 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod energy;
pub mod engine;
pub mod fault;
pub mod metrics;
pub mod model;
mod par;
pub mod protocol;
pub mod report;
pub mod rng;
pub mod runner;
mod state;
pub mod trace;

pub use energy::EnergyMeter;
pub use engine::{ConvergencePolicy, EngineMode, SimConfig, Simulator};
pub use fault::{
    ChannelAdversary, ChannelJam, Churn, Crash, Dormancy, DownTime, FaultKind, FaultPlan, Join,
    RandomCrashes, RecoveryWindow, WakePlan,
};
pub use metrics::{ChannelRoundMetrics, RoundMetrics};
pub use model::{Action, ChannelModel, Feedback, Message, NodeStatus};
pub use protocol::{Layer, NodeRng, Protocol, VirtualClock};
pub use report::RunReport;
pub use rng::split_seed;
pub use runner::{
    run_trials, run_trials_budgeted, run_trials_resumable, TrialFailure, TrialOutcome, TrialSet,
};
pub use trace::{
    ChannelTrace, EventKind, EventMask, FilteredTrace, JsonlTrace, NullTrace, RingTrace,
    TraceEvent, TraceSink, VecTrace,
};
