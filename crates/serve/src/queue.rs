//! Bounded fair job queue.
//!
//! Jobs are dequeued round-robin across clients rather than strictly
//! FIFO: a client that bulk-submits 100 jobs cannot starve a client that
//! submits one. The queue is a plain data structure — the server wraps it
//! in a `Mutex`/`Condvar` pair; no locking happens here.

use std::collections::{HashMap, VecDeque};

/// A bounded multi-client queue with round-robin dequeue order.
#[derive(Debug)]
pub struct FairQueue {
    /// Clients in round-robin order; a client appears at most once and
    /// only while it has pending jobs.
    order: VecDeque<String>,
    /// Pending job ids per client, FIFO within the client.
    per_client: HashMap<String, VecDeque<String>>,
    /// Total jobs currently queued across all clients.
    len: usize,
    /// Maximum total jobs before `push` rejects.
    capacity: usize,
}

impl FairQueue {
    /// Create a queue that holds at most `capacity` jobs in total.
    pub fn new(capacity: usize) -> FairQueue {
        FairQueue {
            order: VecDeque::new(),
            per_client: HashMap::new(),
            len: 0,
            capacity,
        }
    }

    /// Number of jobs currently queued.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Enqueue `job` for `client`. Returns `Err` (backpressure — the
    /// server answers `429`) when the queue is at capacity.
    pub fn push(&mut self, client: &str, job: String) -> Result<(), String> {
        if self.len >= self.capacity {
            return Err(format!("queue full ({} jobs)", self.capacity));
        }
        let slot = self.per_client.entry(client.to_string()).or_default();
        if slot.is_empty() {
            self.order.push_back(client.to_string());
        }
        slot.push_back(job);
        self.len += 1;
        Ok(())
    }

    /// Dequeue the next job, rotating fairly across clients. Returns the
    /// owning client alongside the job id.
    pub fn pop(&mut self) -> Option<(String, String)> {
        let client = self.order.pop_front()?;
        let slot = self
            .per_client
            .get_mut(&client)
            .expect("client in order must have a slot");
        let job = slot.pop_front().expect("client in order has pending jobs");
        self.len -= 1;
        if slot.is_empty() {
            self.per_client.remove(&client);
        } else {
            self.order.push_back(client.clone());
        }
        Some((client, job))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_interleaves_clients() {
        let mut q = FairQueue::new(16);
        // alice floods, bob submits one late.
        for i in 0..4 {
            q.push("alice", format!("a{i}")).unwrap();
        }
        q.push("bob", "b0".to_string()).unwrap();
        assert_eq!(q.len(), 5);

        let drained: Vec<(String, String)> = std::iter::from_fn(|| q.pop()).collect();
        let jobs: Vec<&str> = drained.iter().map(|(_, j)| j.as_str()).collect();
        // bob's single job is served second, not fifth.
        assert_eq!(jobs, vec!["a0", "b0", "a1", "a2", "a3"]);
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_within_a_single_client() {
        let mut q = FairQueue::new(8);
        for i in 0..3 {
            q.push("solo", format!("j{i}")).unwrap();
        }
        let jobs: Vec<String> = std::iter::from_fn(|| q.pop()).map(|(_, j)| j).collect();
        assert_eq!(jobs, vec!["j0", "j1", "j2"]);
    }

    #[test]
    fn capacity_rejects_and_recovers() {
        let mut q = FairQueue::new(2);
        q.push("a", "1".to_string()).unwrap();
        q.push("b", "2".to_string()).unwrap();
        assert!(q.push("c", "3".to_string()).is_err());
        q.pop().unwrap();
        q.push("c", "3".to_string()).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_on_empty_is_none() {
        let mut q = FairQueue::new(1);
        assert_eq!(q.pop(), None);
        q.push("a", "x".to_string()).unwrap();
        assert_eq!(q.pop(), Some(("a".to_string(), "x".to_string())));
        assert_eq!(q.pop(), None);
    }
}
