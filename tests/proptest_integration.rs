//! Property-based integration tests: on arbitrary small graphs, every
//! algorithm's output verifies as an MIS.
//!
//! Failure probabilities are 1/poly of the *parameter* n, so all protocols
//! run with a large n-bound (4096) regardless of the actual graph size —
//! per-case failure odds are negligible across the proptest case budget.

use energy_mis::graphs::{Graph, GraphBuilder};
use energy_mis::mis::baselines::naive_luby_cd;
use energy_mis::mis::cd::CdMis;
use energy_mis::mis::low_degree::LowDegreeMis;
use energy_mis::mis::nocd::NoCdMis;
use energy_mis::mis::params::{CdParams, LowDegreeParams, NoCdParams};
use energy_mis::netsim::{ChannelModel, SimConfig, Simulator};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..28).prop_flat_map(|n| {
        let edge = (0..n, 0..n).prop_filter("no loops", |(u, v)| u != v);
        proptest::collection::vec(edge, 0..(2 * n)).prop_map(move |edges| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in edges {
                b.add_edge(u, v).unwrap();
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cd_mis_always_valid(g in arb_graph(), seed in any::<u64>()) {
        let params = CdParams::for_n(4096);
        let report = Simulator::new(&g, SimConfig::new(ChannelModel::Cd).with_seed(seed))
            .run(|_, _| CdMis::new(params));
        prop_assert!(report.is_correct_mis(&g), "{:?}", report.verify_mis(&g));
    }

    #[test]
    fn beeping_mis_always_valid(g in arb_graph(), seed in any::<u64>()) {
        let params = CdParams::for_n(4096);
        let report = Simulator::new(&g, SimConfig::new(ChannelModel::Beeping).with_seed(seed))
            .run(|_, _| CdMis::new(params));
        prop_assert!(report.is_correct_mis(&g), "{:?}", report.verify_mis(&g));
    }

    #[test]
    fn naive_luby_always_valid(g in arb_graph(), seed in any::<u64>()) {
        let params = CdParams::for_n(4096);
        let report = Simulator::new(&g, SimConfig::new(ChannelModel::Cd).with_seed(seed))
            .run(|_, _| naive_luby_cd(params));
        prop_assert!(report.is_correct_mis(&g), "{:?}", report.verify_mis(&g));
    }

    #[test]
    fn energy_never_exceeds_rounds(g in arb_graph(), seed in any::<u64>()) {
        let params = CdParams::for_n(4096);
        let report = Simulator::new(&g, SimConfig::new(ChannelModel::Cd).with_seed(seed))
            .run(|_, _| CdMis::new(params));
        // Conservation: awake rounds ≤ elapsed rounds, per node.
        for m in &report.meters {
            prop_assert!(m.energy() <= report.rounds);
        }
    }
}

proptest! {
    // The no-CD machines are slower; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn nocd_mis_always_valid(g in arb_graph(), seed in any::<u64>()) {
        let params = NoCdParams::for_n(1024, g.max_degree().max(2));
        let report = Simulator::new(&g, SimConfig::new(ChannelModel::NoCd).with_seed(seed))
            .run(|_, _| NoCdMis::new(params));
        prop_assert!(report.is_correct_mis(&g), "{:?}", report.verify_mis(&g));
    }

    #[test]
    fn low_degree_mis_always_valid(g in arb_graph(), seed in any::<u64>()) {
        let params = LowDegreeParams::for_n(1024, g.max_degree().max(2));
        let report = Simulator::new(&g, SimConfig::new(ChannelModel::NoCd).with_seed(seed))
            .run(|_, _| LowDegreeMis::new(params));
        prop_assert!(report.is_correct_mis(&g), "{:?}", report.verify_mis(&g));
    }
}
