//! Naive no-CD MIS: simulate a CD-model algorithm round by round with
//! traditional backoff (§1.3's "straightforward implementation").
//!
//! Each CD round becomes a *block* of `k·W` no-CD rounds (`k = ⌈c·log₂ n⌉`
//! repetitions of a `W = ⌈log₂ Δ⌉`-round Decay), so that a CD-round
//! listener detects a transmitting neighbor with probability
//! `1 − (7/8)^k = 1 − 1/poly(n)`:
//!
//! - a CD-round **transmitter** runs a traditional [`DecaySender`] for the
//!   block;
//! - a CD-round **listener** runs a traditional [`DecayReceiver`] — awake
//!   for the entire block;
//! - a CD-round **sleeper** sleeps through the whole block.
//!
//! With the naive Luby inner algorithm this costs Θ(log²n) CD rounds ×
//! Θ(log n·log Δ) rounds per block ≈ O(log⁴n) energy *and* rounds — the
//! baseline Theorem 10 improves to O(log²n·loglog n) energy.
//!
//! The wrapper is generic over the inner energy mode so the E11 ablation
//! can also measure the intermediate point (early-sleep inner, naive
//! simulation: O(log²n·log Δ) energy).

use crate::backoff::{DecayReceiver, DecaySender};
use crate::cd::{CdMis, EnergyMode};
use crate::params::{log2f, CdParams};
use radio_netsim::{Action, Feedback, Message, NodeRng, NodeStatus, Protocol};

/// One in-flight simulated CD round.
#[derive(Debug, Clone)]
enum Block {
    Snd(DecaySender),
    Rec(DecayReceiver),
}

/// Parameters of the naive simulation layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NaiveSimParams {
    /// Network size bound (sets the per-block repetition count).
    pub n: usize,
    /// Degree bound Δ (sets the Decay window width).
    pub delta: usize,
    /// Repetition multiplier: blocks run ⌈c_sim·log₂ n⌉ Decay iterations.
    pub c_sim: f64,
}

impl NaiveSimParams {
    /// Calibrated experiment preset.
    pub fn for_n(n: usize, delta: usize) -> NaiveSimParams {
        NaiveSimParams {
            n,
            delta,
            c_sim: 2.0,
        }
    }

    /// Decay iterations per block.
    pub fn k(&self) -> u32 {
        (self.c_sim * log2f(self.n)).ceil().max(1.0) as u32
    }

    /// Decay window width W (shared convention with
    /// [`crate::backoff::backoff_window`]).
    pub fn window(&self) -> u32 {
        crate::backoff::backoff_window(self.delta)
    }

    /// Rounds per simulated CD round.
    pub fn block_len(&self) -> u64 {
        self.k() as u64 * self.window() as u64
    }
}

/// The naive no-CD MIS protocol: a CD-model [`CdMis`] executed over
/// traditional per-round backoff blocks.
#[derive(Debug, Clone)]
pub struct NoCdNaive {
    inner: CdMis,
    sim: NaiveSimParams,
    block: Option<Block>,
    /// Inner (CD) round of the in-flight block.
    inner_round: u64,
}

impl NoCdNaive {
    /// Creates the §1.3 baseline: naive Luby inside, naive simulation
    /// outside.
    pub fn new(cd: CdParams, sim: NaiveSimParams) -> NoCdNaive {
        NoCdNaive::with_inner_mode(cd, sim, EnergyMode::Naive)
    }

    /// Creates the wrapper with an explicit inner energy mode (for
    /// ablations).
    pub fn with_inner_mode(cd: CdParams, sim: NaiveSimParams, mode: EnergyMode) -> NoCdNaive {
        NoCdNaive {
            inner: CdMis::with_mode(cd, mode),
            sim,
            block: None,
            inner_round: 0,
        }
    }

    /// The simulation-layer parameters.
    pub fn sim_params(&self) -> &NaiveSimParams {
        &self.sim
    }

    /// Total no-CD rounds of the full schedule.
    pub fn total_rounds(&self) -> u64 {
        self.inner.params().total_rounds() * self.sim.block_len()
    }

    /// Delivers the completed block's outcome to the inner machine.
    fn close_block(&mut self, rng: &mut NodeRng) {
        if let Some(block) = self.block.take() {
            let fb = match block {
                Block::Snd(_) => Feedback::Sent,
                Block::Rec(r) => {
                    if r.heard() {
                        Feedback::Heard(Message::unary())
                    } else {
                        Feedback::Silence
                    }
                }
            };
            self.inner.feedback(self.inner_round, fb, rng);
        }
    }
}

impl Protocol for NoCdNaive {
    fn act(&mut self, round: u64, rng: &mut NodeRng) -> Action {
        let block_len = self.sim.block_len();
        // Close a finished block before consulting the inner machine.
        let done = match &self.block {
            Some(Block::Snd(s)) => s.is_done(round),
            Some(Block::Rec(r)) => r.is_done(round),
            None => false,
        };
        if done {
            self.close_block(rng);
            if self.inner.finished() {
                return Action::halt();
            }
        }
        match &mut self.block {
            Some(Block::Snd(s)) => s.act(round),
            Some(Block::Rec(r)) => r.act(round),
            None => {
                // Block boundary: ask the inner machine for its CD action.
                debug_assert_eq!(round % block_len, 0, "block misalignment");
                let inner_round = round / block_len;
                self.inner_round = inner_round;
                match self.inner.act(inner_round, rng) {
                    Action::Sleep { wake_at } => {
                        if self.inner.finished() || wake_at == u64::MAX {
                            Action::halt()
                        } else {
                            Action::Sleep {
                                wake_at: wake_at * block_len,
                            }
                        }
                    }
                    Action::Transmit(_) => {
                        let s = DecaySender::new(round, self.sim.k(), self.sim.delta, rng);
                        self.block = Some(Block::Snd(s));
                        self.block
                            .as_mut()
                            .map(|b| match b {
                                Block::Snd(s) => s.act(round),
                                Block::Rec(_) => unreachable!(),
                            })
                            .expect("just set")
                    }
                    Action::Listen => {
                        let r = DecayReceiver::new(round, self.sim.k(), self.sim.delta);
                        self.block = Some(Block::Rec(r));
                        Action::Listen
                    }
                }
            }
        }
    }

    fn feedback(&mut self, round: u64, fb: Feedback, _rng: &mut NodeRng) {
        match &mut self.block {
            Some(Block::Rec(r)) => r.feedback(round, fb),
            Some(Block::Snd(_)) | None => {}
        }
    }

    fn status(&self) -> NodeStatus {
        self.inner.status()
    }

    fn finished(&self) -> bool {
        self.inner.finished() && self.block.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_graphs::generators;
    use radio_netsim::{ChannelModel, SimConfig, Simulator};

    fn run_naive(g: &mis_graphs::Graph, seed: u64) -> radio_netsim::RunReport {
        // Use a comfortable upper bound for n (the paper only requires an
        // upper bound): small exact n would make ranks short enough for
        // occasional ties.
        let n_bound = (4 * g.len()).max(64);
        let cd = CdParams::for_n(n_bound);
        let sim = NaiveSimParams::for_n(n_bound, g.max_degree().max(2));
        Simulator::new(g, SimConfig::new(ChannelModel::NoCd).with_seed(seed))
            .run(|_, _| NoCdNaive::new(cd, sim))
    }

    #[test]
    fn solves_small_graphs_in_nocd() {
        for g in [
            generators::path(20),
            generators::star(24),
            generators::gnp(48, 0.1, 3),
            generators::empty(10),
        ] {
            let report = run_naive(&g, 17);
            assert!(
                report.is_correct_mis(&g),
                "failed on {g:?}: {:?}",
                report.verify_mis(&g)
            );
        }
    }

    #[test]
    fn block_structure_multiplies_rounds() {
        let g = generators::empty(1);
        let cd = CdParams::for_n(16);
        let sim = NaiveSimParams::for_n(16, 4);
        let report = Simulator::new(&g, SimConfig::new(ChannelModel::NoCd).with_seed(1))
            .run(|_, _| NoCdNaive::new(cd, sim));
        assert!(report.is_correct_mis(&g));
        // The isolated node wins phase 0: awake for (rank_bits + 1) blocks.
        let blocks = cd.phase_len();
        // +1: the node is re-polled one round past its last block to close
        // it and retire.
        assert_eq!(report.rounds, blocks * sim.block_len() + 1);
    }

    #[test]
    fn naive_energy_far_exceeds_cd_energy() {
        let g = generators::gnp(64, 0.1, 7);
        let naive = run_naive(&g, 3);
        assert!(naive.is_correct_mis(&g));
        let cd_params = CdParams::for_n(256);
        let cd = Simulator::new(&g, SimConfig::new(ChannelModel::Cd).with_seed(3))
            .run(|_, _| CdMis::new(cd_params));
        assert!(cd.is_correct_mis(&g));
        assert!(
            naive.max_energy() > 5 * cd.max_energy(),
            "naive {} vs cd {}",
            naive.max_energy(),
            cd.max_energy()
        );
    }

    #[test]
    fn early_sleep_inner_reduces_energy() {
        let g = generators::clique(32);
        let cd = CdParams::for_n(32);
        let sim = NaiveSimParams::for_n(32, 31);
        let config = SimConfig::new(ChannelModel::NoCd).with_seed(5);
        let naive = Simulator::new(&g, config)
            .run(|_, _| NoCdNaive::with_inner_mode(cd, sim, EnergyMode::Naive));
        let early = Simulator::new(&g, config)
            .run(|_, _| NoCdNaive::with_inner_mode(cd, sim, EnergyMode::EarlySleep));
        assert!(naive.is_correct_mis(&g));
        assert!(early.is_correct_mis(&g));
        assert!(
            early.max_energy() < naive.max_energy(),
            "early {} !< naive {}",
            early.max_energy(),
            naive.max_energy()
        );
    }
}
