//! Observability overhead: the same CD run under each trace sink.
//!
//! `null` is the baseline (mask `NONE`, no metrics): it must sit within
//! noise of the untraced engine, since every per-event and per-metrics
//! branch is gated on the mask / `collect_metrics` flag. The other
//! variants price the layers individually: an inert fault plan (which
//! must be free — zero-cost-when-off), round-metrics aggregation only,
//! full in-memory event capture, and JSONL serialization to a sink
//! writer.

use criterion::{criterion_group, criterion_main, Criterion};
use mis_bench::workload;
use radio_mis::cd::CdMis;
use radio_mis::params::CdParams;
use radio_netsim::{
    ChannelModel, FaultPlan, JsonlTrace, NullTrace, SimConfig, Simulator, VecTrace,
};

const N: usize = 1024;

fn config(seed: u64) -> SimConfig {
    SimConfig::new(ChannelModel::Cd).with_seed(seed)
}

fn bench(c: &mut Criterion) {
    let g = workload(N, 42);
    let params = CdParams::for_n(N);
    let mut group = c.benchmark_group("trace_overhead");
    group.sample_size(20);

    group.bench_function("untraced", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let report = Simulator::new(&g, config(seed)).run(|_, _| CdMis::new(params));
            assert!(report.completed);
            report.rounds
        })
    });

    group.bench_function("null", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let report = Simulator::new(&g, config(seed))
                .run_traced(|_, _| CdMis::new(params), &mut NullTrace);
            assert!(report.completed);
            report.rounds
        })
    });

    // An explicitly-attached inert FaultPlan must cost the same as no
    // plan at all: the engine resolves it once up-front and every
    // per-round fault branch is gated on cached booleans.
    group.bench_function("null_inert_faults", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let report = Simulator::new(&g, config(seed).with_faults(FaultPlan::none()))
                .run_traced(|_, _| CdMis::new(params), &mut NullTrace);
            assert!(report.completed);
            report.rounds
        })
    });

    group.bench_function("metrics_only", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let report = Simulator::new(&g, config(seed).with_round_metrics())
                .run_traced(|_, _| CdMis::new(params), &mut NullTrace);
            assert!(report.completed);
            report.metrics_timeline().len()
        })
    });

    group.bench_function("vec_all_events", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut trace = VecTrace::default();
            let report =
                Simulator::new(&g, config(seed)).run_traced(|_, _| CdMis::new(params), &mut trace);
            assert!(report.completed);
            trace.events.len()
        })
    });

    group.bench_function("jsonl_sink", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut trace = JsonlTrace::new(std::io::sink());
            let report =
                Simulator::new(&g, config(seed)).run_traced(|_, _| CdMis::new(params), &mut trace);
            assert!(report.completed);
            trace.events_written()
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
