//! Random geometric (unit-disk) graphs — the classical ad-hoc / sensor
//! network topology motivating the paper's introduction.
//!
//! Nodes are placed uniformly at random in the unit square; two nodes are
//! adjacent when within Euclidean distance `radius` (their "transmission
//! range"). A cell grid makes construction O(n + m) in expectation.

use super::rng;
use crate::graph::{Graph, GraphBuilder};
use rand::Rng;

/// Random geometric graph on the unit square.
///
/// # Panics
///
/// Panics if `radius` is negative or NaN.
pub fn random_geometric(n: usize, radius: f64, seed: u64) -> Graph {
    build_geometric(n, radius, seed, false)
}

/// Random geometric graph on the unit *torus* (wrap-around distances), which
/// removes boundary effects and gives a more uniform degree distribution.
///
/// # Panics
///
/// Panics if `radius` is negative or NaN.
pub fn random_geometric_torus(n: usize, radius: f64, seed: u64) -> Graph {
    build_geometric(n, radius, seed, true)
}

fn build_geometric(n: usize, radius: f64, seed: u64, torus: bool) -> Graph {
    assert!(radius >= 0.0 && !radius.is_nan(), "invalid radius {radius}");
    let mut r = rng(seed);
    let points: Vec<(f64, f64)> = (0..n)
        .map(|_| (r.gen_range(0.0..1.0), r.gen_range(0.0..1.0)))
        .collect();
    let mut b = GraphBuilder::new(n);
    if n < 2 || radius == 0.0 {
        return b.build();
    }
    if radius >= 1.0 && !torus {
        // Dense regime fallback: the grid degenerates; just do all pairs when
        // the radius spans the whole square diagonal.
        if radius * radius >= 2.0 {
            for u in 0..n {
                for v in (u + 1)..n {
                    b.add_edge(u, v).expect("ids valid");
                }
            }
            return b.build();
        }
    }
    // Bucket points into cells of side >= radius.
    let cells = ((1.0 / radius).floor() as usize).clamp(1, n.max(1));
    let cell_of = |x: f64| -> usize { ((x * cells as f64) as usize).min(cells - 1) };
    let mut grid: Vec<Vec<usize>> = vec![Vec::new(); cells * cells];
    for (i, &(x, y)) in points.iter().enumerate() {
        grid[cell_of(x) * cells + cell_of(y)].push(i);
    }
    let r2 = radius * radius;
    let dist2 = |a: (f64, f64), bpt: (f64, f64)| -> f64 {
        let mut dx = (a.0 - bpt.0).abs();
        let mut dy = (a.1 - bpt.1).abs();
        if torus {
            dx = dx.min(1.0 - dx);
            dy = dy.min(1.0 - dy);
        }
        dx * dx + dy * dy
    };
    let c = cells as isize;
    for cx in 0..c {
        for cy in 0..c {
            let here = &grid[(cx * c + cy) as usize];
            for dx in -1..=1isize {
                for dy in -1..=1isize {
                    let (nx, ny) = if torus {
                        ((cx + dx).rem_euclid(c), (cy + dy).rem_euclid(c))
                    } else {
                        let nx = cx + dx;
                        let ny = cy + dy;
                        if nx < 0 || ny < 0 || nx >= c || ny >= c {
                            continue;
                        }
                        (nx, ny)
                    };
                    let there = &grid[(nx * c + ny) as usize];
                    for &i in here {
                        for &j in there {
                            if i < j && dist2(points[i], points[j]) <= r2 {
                                b.add_edge(i, j).expect("ids valid");
                            }
                        }
                    }
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_radius_no_edges() {
        assert_eq!(random_geometric(100, 0.0, 1).edge_count(), 0);
    }

    #[test]
    fn huge_radius_is_clique() {
        let g = random_geometric(20, 1.5, 1);
        assert_eq!(g.edge_count(), 190);
    }

    #[test]
    fn deterministic_by_seed() {
        assert_eq!(random_geometric(200, 0.1, 9), random_geometric(200, 0.1, 9));
        assert_ne!(
            random_geometric(200, 0.1, 9),
            random_geometric(200, 0.1, 10)
        );
    }

    #[test]
    fn grid_matches_bruteforce() {
        // Cross-check the cell-grid construction against O(n²) brute force.
        let n = 150;
        let radius = 0.13;
        let seed = 42;
        let fast = random_geometric(n, radius, seed);
        // Re-derive points with the same RNG stream.
        let mut r = super::rng(seed);
        use rand::Rng;
        let points: Vec<(f64, f64)> = (0..n)
            .map(|_| (r.gen_range(0.0..1.0), r.gen_range(0.0..1.0)))
            .collect();
        let mut slow = crate::GraphBuilder::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                let dx = points[i].0 - points[j].0;
                let dy = points[i].1 - points[j].1;
                if dx * dx + dy * dy <= radius * radius {
                    slow.add_edge(i, j).unwrap();
                }
            }
        }
        assert_eq!(fast, slow.build());
    }

    #[test]
    fn torus_degree_distribution_tighter() {
        let n = 1500;
        let radius = 0.05;
        let square = random_geometric(n, radius, 5);
        let torus = random_geometric_torus(n, radius, 5);
        // Torus has no boundary, so mean degree is >= the square's.
        assert!(torus.avg_degree() >= square.avg_degree());
        torus.validate().unwrap();
    }

    #[test]
    fn expected_degree_formula() {
        // E[deg] ≈ (n-1)·π·r² on the torus.
        let n = 3000;
        let radius = 0.04;
        let g = random_geometric_torus(n, radius, 17);
        let expected = (n as f64 - 1.0) * std::f64::consts::PI * radius * radius;
        let got = g.avg_degree();
        assert!(
            (got - expected).abs() < 0.25 * expected,
            "avg degree {got} vs expected {expected}"
        );
    }
}
